"""Deterministic batch-close behaviour on a simulated clock.

Every scenario drives :class:`~repro.serve.core.ServerCore` with a
:class:`~repro.serve.core.VirtualClock` — time moves only when a test
advances it, so deadline-vs-size races, partial-batch timer flushes,
shed ordering and tenant fairness are exact, with zero wall-clock
sleeps anywhere.
"""

import pytest

from repro.errors import ReproError
from repro.host.engine import CuartEngine
from repro.host.results import OpStatus
from repro.serve import ServerConfig, ServerCore, VirtualClock
from repro.workloads import random_keys

KEYS = random_keys(256, 8, seed=21)


def build_engine(**kwargs):
    eng = CuartEngine(batch_size=128, **kwargs)
    eng.populate((k, i) for i, k in enumerate(KEYS))
    eng.map_to_device()
    return eng


def make_core(**kwargs):
    clock = VirtualClock()
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("deadline_us", 100.0)
    core = ServerCore(build_engine(), clock=clock, **kwargs)
    return core, clock


class TestDeadlinePartialBatch:
    def test_partial_batch_flushes_only_at_deadline(self):
        core, clock = make_core()
        got = []
        for k in KEYS[:3]:  # 3 < batch_close of 8
            core.offer("lookup", k, on_done=lambda op: got.append(op.value))
        assert got == []  # nothing closed: under size, before deadline
        assert core.backlog == 3

        clock.advance(99.0)
        assert core.poll() == 0  # one µs early: still waiting
        assert got == []

        clock.advance(1.0)
        assert core.poll() == 3  # exactly at the deadline
        assert got == [0, 1, 2]
        assert core.backlog == 0
        assert core.report_snapshot().flush_reasons["deadline"] == 1

    def test_deadline_is_measured_from_oldest_op(self):
        core, clock = make_core()
        core.offer("lookup", KEYS[0])
        clock.advance(60.0)
        core.offer("lookup", KEYS[1])  # younger op must not reset the timer
        assert core.next_deadline_us() == pytest.approx(100.0)
        clock.advance(40.0)
        assert core.poll() == 2

    def test_deadline_flush_respects_write_ordering(self):
        # a queued update and a younger same-key lookup: the timer fires
        # on the lookup's class but its write ancestor must flush first
        core, clock = make_core(max_batch=8)
        order = []
        core.offer("update", (KEYS[0], 777),
                   on_done=lambda op: order.append("update"))
        core.offer("lookup", KEYS[1],
                   on_done=lambda op: order.append("lookup"))
        clock.advance(100.0)
        core.poll()
        assert order == ["update", "lookup"]


class TestSizeBeforeDeadline:
    def test_full_batch_closes_without_any_clock_advance(self):
        core, clock = make_core(max_batch=8)
        got = []
        for k in KEYS[:8]:
            core.offer("lookup", k, on_done=lambda op: got.append(op.value))
        assert got == list(range(8))  # closed on size, clock never moved
        assert core.backlog == 0
        assert core.report_snapshot().flush_reasons["size-full"] == 1

    def test_overflow_stays_queued_for_the_next_window(self):
        core, clock = make_core(max_batch=8)
        for k in KEYS[:11]:
            core.offer("lookup", k)
        assert core.backlog == 3  # 8 flushed on size, 3 await a close
        assert core.next_deadline_us() == pytest.approx(100.0)
        clock.advance(100.0)
        assert core.poll() == 3

    def test_retuned_batch_close_takes_effect_immediately(self):
        core, clock = make_core(max_batch=8)
        core.set_batch_close(4)
        got = []
        for k in KEYS[:4]:
            core.offer("lookup", k, on_done=lambda op: got.append(op.value))
        assert len(got) == 4  # the smaller close applied to live queues


class TestEmptyQueueTimerRace:
    def test_poll_on_empty_queue_is_a_noop(self):
        core, clock = make_core()
        assert core.next_deadline_us() is None
        assert core.poll() == 0
        clock.advance(10_000.0)
        assert core.poll() == 0  # stale timer firing late: harmless

    def test_op_arriving_after_stale_deadline_gets_fresh_window(self):
        # the race: a timer armed for an op that a size-close already
        # served fires late, after a new op arrived — the new op must
        # keep its own full deadline, not inherit the stale one
        core, clock = make_core(max_batch=2)
        core.offer("lookup", KEYS[0])
        core.offer("lookup", KEYS[1])  # size close; queue now empty
        assert core.backlog == 0
        clock.advance(100.0)  # the armed timer would fire about now
        got = []
        core.offer("lookup", KEYS[2], on_done=lambda op: got.append(op.value))
        assert core.poll() == 0  # stale fire: the new op is not due yet
        assert got == []
        assert core.next_deadline_us() == pytest.approx(200.0)
        clock.advance(100.0)
        assert core.poll() == 1
        assert got == [2]

    def test_deadline_advances_per_window_not_per_op(self):
        core, clock = make_core(max_batch=8)
        core.offer("lookup", KEYS[0])
        first = core.next_deadline_us()
        clock.advance(100.0)
        core.poll()
        clock.advance(50.0)
        core.offer("lookup", KEYS[1])
        assert core.next_deadline_us() == pytest.approx(first + 150.0)


class TestShedOrdering:
    def test_hard_depth_sheds_newest_first_come_first_kept(self):
        core, clock = make_core(max_batch=1024, deadline_us=1e6,
                                queue_depth=4, high_water=1.0)
        ops = [core.offer("lookup", KEYS[i]) for i in range(6)]
        kept, shed = ops[:4], ops[4:]
        assert all(not op.shed for op in kept)
        assert all(op.shed for op in shed)
        assert all(op.status == int(OpStatus.SHED) for op in shed)
        assert core.sheds == 2

    def test_shed_carries_retry_after(self):
        core, clock = make_core(max_batch=1024, deadline_us=500.0,
                                queue_depth=2, high_water=1.0)
        core.offer("lookup", KEYS[0])
        core.offer("lookup", KEYS[1])
        op = core.offer("lookup", KEYS[2])
        assert op.shed
        assert op.retry_after_us >= 500.0  # at least one close window

    def test_shed_ops_complete_synchronously_with_callback(self):
        core, clock = make_core(max_batch=1024, deadline_us=1e6,
                                queue_depth=1, high_water=1.0)
        core.offer("lookup", KEYS[0])
        seen = []
        op = core.offer("lookup", KEYS[1], on_done=lambda o: seen.append(o))
        assert op.done and seen == [op]

    def test_shed_write_leaves_no_pending_overlay_effect(self):
        # a shed update must be invisible: later reads serve the device
        # value, not the refused write's
        core, clock = make_core(max_batch=1024, deadline_us=1e6,
                                queue_depth=1, high_water=1.0)
        core.offer("lookup", KEYS[5])  # fills the queue
        op = core.offer("update", (KEYS[5], 999_999))
        assert op.shed
        assert core.overlay.read(KEYS[5]) is None
        got = []
        clock.advance(1e6)
        core.poll()
        core.offer("lookup", KEYS[5], on_done=lambda o: got.append(o.value))
        clock.advance(1e6)
        core.poll()
        assert got == [5]  # the original value, not 999999

    def test_open_circuit_shrinks_effective_depth(self):
        core, clock = make_core(max_batch=1024, deadline_us=1e6,
                                queue_depth=8, high_water=1.0,
                                degraded_depth_factor=0.25)

        class _OpenCircuit:
            healthy = False

        # a stand-in dispatcher: device_health reads engine._dispatcher
        core.engine._dispatcher = type(
            "D", (), {"health": _OpenCircuit()}
        )()
        assert core._effective_depth() == 2  # 8 * 0.25
        ops = [core.offer("lookup", KEYS[i]) for i in range(4)]
        assert [op.shed for op in ops] == [False, False, True, True]


class TestTwoTenantFairness:
    def test_over_share_tenant_sheds_first_above_high_water(self):
        core, clock = make_core(
            max_batch=1024, deadline_us=1e6, queue_depth=8,
            high_water=0.5, tenant_weights={"a": 3.0, "b": 1.0},
        )
        outcomes = []
        for i in range(12):
            tenant = "a" if i % 2 else "b"
            op = core.offer("lookup", KEYS[i], tenant=tenant)
            outcomes.append((tenant, op.shed))
        # below high water (backlog < 4) everyone is admitted
        assert all(not shed for _, shed in outcomes[:4])
        # above it, b (weight 1, fair share 8*1/4=2) sheds while a
        # (weight 3, fair share 6) keeps admitting
        b_after = [shed for t, shed in outcomes[4:] if t == "b"]
        a_after = [shed for t, shed in outcomes[4:] if t == "a"]
        assert all(b_after)
        assert not all(a_after)
        assert core.tenant_backlog["a"] > core.tenant_backlog["b"]

    def test_equal_weights_share_equally(self):
        core, clock = make_core(
            max_batch=1024, deadline_us=1e6, queue_depth=8, high_water=0.5,
        )
        for i in range(4):  # fill to the high-water mark with tenant a
            core.offer("lookup", KEYS[i], tenant="a")
        # b enters under its share (8/2 = 4); a is already at its share
        assert not core.offer("lookup", KEYS[4], tenant="b").shed
        assert core.offer("lookup", KEYS[5], tenant="a").shed

    def test_lone_tenant_keeps_the_whole_depth(self):
        # fairness is work-conserving: with nobody else queued, one
        # tenant's share is the full depth (only the hard bound sheds)
        core, clock = make_core(
            max_batch=1024, deadline_us=1e6, queue_depth=8, high_water=0.5,
        )
        ops = [core.offer("lookup", KEYS[i], tenant="a") for i in range(9)]
        assert [op.shed for op in ops] == [False] * 8 + [True]

    def test_fairness_resets_when_backlog_drains(self):
        core, clock = make_core(
            max_batch=1024, deadline_us=200.0, queue_depth=8, high_water=0.5,
        )
        for i in range(4):
            core.offer("lookup", KEYS[i], tenant="a")
        core.offer("lookup", KEYS[4], tenant="b")
        assert core.offer("lookup", KEYS[5], tenant="a").shed
        clock.advance(200.0)
        core.poll()  # drains the backlog
        assert not core.offer("lookup", KEYS[6], tenant="a").shed


class TestConfigValidation:
    def test_rejects_non_power_of_two_batch(self):
        with pytest.raises(ReproError):
            ServerConfig(max_batch=1000)

    def test_rejects_bad_high_water(self):
        with pytest.raises(ReproError):
            ServerConfig(high_water=0.0)

    def test_rejects_negative_deadline(self):
        with pytest.raises(ReproError):
            ServerConfig(deadline_us=-1.0)

    def test_bounds_clamp_to_starting_values(self):
        cfg = ServerConfig(max_batch=8, deadline_us=10.0)
        assert cfg.min_batch <= 8
        assert cfg.min_deadline_us <= 10.0
        assert cfg.max_deadline_us >= 10.0

    def test_virtual_clock_rejects_rewind(self):
        with pytest.raises(ReproError):
            VirtualClock().advance(-1.0)
