"""The asyncio front door and its sync shim.

These are integration smoke tests over real event loops (the
deterministic policy coverage lives in ``test_adaptive_batching.py``
against the clock-injectable core): concurrent awaiters coalescing into
shared batches, the unified ``submit`` surface, shed surfacing as
:class:`~repro.serve.core.ServerOverloadedError`, and the threaded shim
bridging to the same core.
"""

import asyncio

import pytest

from repro.host.engine import CuartEngine
from repro.host.results import OpStatus
from repro.serve import CuartServer, ServerOverloadedError, SyncCuartServer
from repro.workloads import random_keys

KEYS = random_keys(128, 8, seed=51)


def build_engine():
    eng = CuartEngine(batch_size=64)
    eng.populate((k, i) for i, k in enumerate(KEYS))
    eng.map_to_device()
    return eng


def run(coro):
    return asyncio.run(coro)


class TestAsyncServer:
    def test_concurrent_lookups_batch_together(self):
        async def main():
            async with CuartServer(
                build_engine(), max_batch=8, deadline_us=50_000.0
            ) as server:
                values = await asyncio.gather(
                    *[server.lookup(KEYS[i]) for i in range(8)]
                )
                return values, server.core.report.batches

        values, batches = run(main())
        assert values == list(range(8))
        assert batches == 1  # eight awaiters, one device batch

    def test_deadline_closes_partial_batch(self):
        async def main():
            async with CuartServer(
                build_engine(), max_batch=1024, deadline_us=2_000.0
            ) as server:
                return await asyncio.wait_for(
                    server.lookup(KEYS[3]), timeout=10.0
                )

        assert run(main()) == 3  # resolved by the pump timer, not size

    def test_full_op_surface(self):
        async def main():
            async with CuartServer(
                build_engine(), max_batch=2, deadline_us=1_000.0
            ) as server:
                out = {}
                out["missing"] = await server.lookup(b"\xff" * 8)
                out["update"] = await server.update(KEYS[0], 4242)
                out["updated"] = await server.lookup(KEYS[0])
                out["delete"] = await server.delete(KEYS[1])
                out["deleted"] = await server.lookup(KEYS[1])
                out["insert"] = await server.insert(b"newkey\x00\x00", 7)
                out["inserted"] = await server.lookup(b"newkey\x00\x00")
                lo, hi = min(KEYS[:8]), max(KEYS[:8])
                out["scan"] = await server.scan(lo, hi)
                return out

        out = run(main())
        assert out["missing"] is None
        assert out["update"] is True and out["updated"] == 4242
        assert out["delete"] is True and out["deleted"] is None
        assert out["insert"] is True and out["inserted"] == 7
        assert len(out["scan"]) >= 1

    def test_submit_returns_the_served_op(self):
        async def main():
            async with CuartServer(
                build_engine(), max_batch=2, deadline_us=1_000.0
            ) as server:
                op = await server.submit("lookup", KEYS[5])
                return op

        op = run(main())
        assert op.done and op.value == 5
        assert op.status == int(OpStatus.OK)
        assert op.latency_us >= 0.0

    def test_shed_raises_overloaded_with_retry_after(self):
        async def main():
            async with CuartServer(
                build_engine(), max_batch=1024, deadline_us=10_000_000.0,
                queue_depth=2, high_water=1.0,
            ) as server:
                t1 = asyncio.ensure_future(server.lookup(KEYS[0]))
                t2 = asyncio.ensure_future(server.lookup(KEYS[1]))
                await asyncio.sleep(0)  # let both enqueue
                with pytest.raises(ServerOverloadedError) as err:
                    await server.lookup(KEYS[2])
                server.core.flush()  # resolve the two queued awaiters
                await asyncio.gather(t1, t2)
                return err.value

        err = run(main())
        assert err.retry_after_us > 0.0

    def test_stop_flushes_pending_ops(self):
        async def main():
            server = CuartServer(
                build_engine(), max_batch=1024, deadline_us=10_000_000.0
            )
            await server.start()
            fut = asyncio.ensure_future(server.lookup(KEYS[7]))
            await asyncio.sleep(0)
            await server.stop()  # must resolve the queued future
            return await asyncio.wait_for(fut, timeout=5.0)

        assert run(main()) == 7

    def test_submit_before_start_errors(self):
        async def main():
            server = CuartServer(build_engine())
            with pytest.raises(RuntimeError):
                await server.submit("lookup", KEYS[0])

        run(main())


class TestSyncShim:
    def test_context_manager_roundtrip(self):
        with SyncCuartServer(
            build_engine(), max_batch=2, deadline_us=1_000.0
        ) as server:
            assert server.lookup(KEYS[2]) == 2
            assert server.update(KEYS[2], 99) is True
            assert server.lookup(KEYS[2]) == 99
            assert server.insert(b"synckey\x00", 1) is True
            assert server.delete(b"synckey\x00") is True
            stats = server.stats()
        assert stats["completed"] >= 5

    def test_stats_surface(self):
        with SyncCuartServer(
            build_engine(), max_batch=2, deadline_us=1_000.0
        ) as server:
            server.lookup(KEYS[0])
            stats = server.stats()
        for key in ("admitted", "sheds", "backlog", "batch_close",
                    "deadline_us", "slo_latency", "queue_wait"):
            assert key in stats

    def test_calls_before_start_error(self):
        server = SyncCuartServer(build_engine())
        with pytest.raises(RuntimeError):
            server.lookup(KEYS[0])
