"""One serving contract, three implementations.

The :class:`~repro.serve.dispatch.Dispatch` protocol is only worth its
name if the offline executor, the sharded executor and the server core
are interchangeable: same stream in, same lookup results out, same
report shape.  These tests run all three over identical mixed streams
and compare results element-wise, then pin :func:`make_dispatch`'s
resolution rules.
"""

import pytest

from repro.host.engine import CuartEngine, GrtEngine
from repro.host.mixed import MixedReport, MixedWorkloadExecutor
from repro.host.sharding import (
    ShardedEngine,
    ShardedMixedExecutor,
    ShardingConfig,
)
from repro.errors import ReproError
from repro.serve import (
    CuartServer,
    Dispatch,
    ServerCore,
    VirtualClock,
    make_dispatch,
)
from repro.workloads import random_keys
from repro.workloads.queries import QueryMix, mixed_queries

KEYS = random_keys(200, 8, seed=31)
STREAM = mixed_queries(KEYS, 500, QueryMix(), seed=32)


def single_engine():
    eng = CuartEngine(batch_size=64)
    eng.populate((k, i) for i, k in enumerate(KEYS))
    eng.map_to_device()
    return eng


def sharded_engine():
    eng = ShardedEngine(sharding=ShardingConfig(n_shards=2), batch_size=64)
    eng.populate((k, i) for i, k in enumerate(KEYS))
    eng.map_to_device()
    return eng


def all_dispatches():
    return [
        ("executor", MixedWorkloadExecutor(single_engine())),
        ("sharded", ShardedMixedExecutor(sharded_engine())),
        ("server-core", ServerCore(
            single_engine(), max_batch=64, clock=VirtualClock()
        )),
        ("server", CuartServer(single_engine(), max_batch=64,
                               clock=VirtualClock())),
    ]


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "name,dispatch", all_dispatches(), ids=lambda v: v if isinstance(v, str) else ""
    )
    def test_satisfies_protocol(self, name, dispatch):
        assert isinstance(dispatch, Dispatch)
        assert dispatch.engine is not None

    def test_engines_do_not_satisfy_it(self):
        assert not isinstance(single_engine(), Dispatch)

    def test_all_implementations_agree_on_results(self):
        outputs = {}
        for name, dispatch in all_dispatches():
            results, report = dispatch.run(list(STREAM))
            outputs[name] = results
            assert isinstance(report, MixedReport)
            assert report.operations == len(STREAM)
        baseline = outputs.pop("executor")
        for name, results in outputs.items():
            assert results == baseline, f"{name} diverged from the executor"

    def test_reports_share_the_accounting_shape(self):
        for name, dispatch in all_dispatches():
            _, report = dispatch.run(list(STREAM))
            assert report.lookups + report.updates + report.deletes \
                + report.inserts + report.scans == len(STREAM)
            assert report.batches > 0
            assert sum(report.ops_by_status.values()) == len(STREAM)
            assert "size-full" in report.flush_reasons


class TestMakeDispatch:
    def test_single_engine_gets_executor(self):
        d = make_dispatch(single_engine())
        assert isinstance(d, MixedWorkloadExecutor)

    def test_grt_engine_gets_executor(self):
        eng = GrtEngine(batch_size=64)
        eng.populate((k, i) for i, k in enumerate(KEYS))
        eng.map_to_device()
        assert isinstance(make_dispatch(eng), MixedWorkloadExecutor)

    def test_sharded_engine_gets_sharded_executor(self):
        d = make_dispatch(sharded_engine())
        assert isinstance(d, ShardedMixedExecutor)

    def test_dispatch_passes_through(self):
        execu = MixedWorkloadExecutor(single_engine())
        assert make_dispatch(execu) is execu
        core = ServerCore(single_engine(), clock=VirtualClock())
        assert make_dispatch(core) is core

    def test_rejects_unknown_targets(self):
        with pytest.raises(ReproError):
            make_dispatch(object())
