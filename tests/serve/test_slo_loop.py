"""The SLO feedback loop on a simulated clock.

A :class:`~repro.serve.slo.SloController` watching the windowed p99 of
``server_slo_latency_us`` must tighten the batch-close knobs when the
objective is violated, relax them back when there is headroom, hold at
the floors, and — when an autotune sweep is wired in — land relax steps
on probed design points instead of blind doubles.
"""

import pytest

from repro.host.autotune import TunePoint
from repro.host.engine import CuartEngine
from repro.serve import ServerCore, SloController, VirtualClock
from repro.serve.slo import windowed_quantile
from repro.workloads import random_keys

KEYS = random_keys(512, 8, seed=41)


def build_core(clock, **kwargs):
    eng = CuartEngine(batch_size=256)
    eng.populate((k, i) for i, k in enumerate(KEYS))
    eng.map_to_device()
    kwargs.setdefault("max_batch", 64)
    kwargs.setdefault("deadline_us", 800.0)
    kwargs.setdefault("retune_interval", 64)
    return ServerCore(eng, clock=clock, **kwargs)


def drive(core, clock, rounds, *, ops_per_round=64, gap_us=0.0):
    """Offer full batches (size-close) with optional inter-round clock
    gaps, so per-op latencies are deterministic."""
    i = 0
    for _ in range(rounds):
        for _ in range(ops_per_round):
            core.offer("lookup", KEYS[i % len(KEYS)])
            i += 1
        if gap_us:
            clock.advance(gap_us)
            core.poll()


class TestWindowedQuantile:
    def test_empty_window_is_zero(self):
        assert windowed_quantile((1.0, 2.0), [0, 0, 0], 0.99) == 0.0

    def test_single_bucket_interpolates(self):
        # 100 observations all in (1, 2]: p50 lands mid-bucket
        assert windowed_quantile((1.0, 2.0), [0, 100, 0], 0.5) == \
            pytest.approx(1.5)

    def test_overflow_bucket_extrapolates(self):
        v = windowed_quantile((1.0, 2.0), [0, 0, 10], 0.99)
        assert v > 2.0

    def test_window_isolation(self):
        # deltas see only the window: earlier observations cancel out
        before = [50, 0, 0]
        after = [50, 100, 0]
        deltas = [a - b for a, b in zip(after, before)]
        assert windowed_quantile((1.0, 2.0), deltas, 0.99) > 1.0


class TestTighten:
    def test_violation_halves_deadline_first(self):
        clock = VirtualClock()
        core = build_core(clock, slo_p99_us=10.0)
        drive(core, clock, 1)  # one full retune window
        core.flush()
        assert core.deadline_us == 400.0  # one halving per window
        assert core.controller.history[0][0] == "tighten"

    def test_deadline_floors_then_batch_shrinks(self):
        clock = VirtualClock()
        core = build_core(clock, slo_p99_us=10.0, min_deadline_us=100.0,
                          min_batch=32)
        drive(core, clock, 8)
        core.flush()
        assert core.deadline_us == 100.0
        assert core.batch_close == 32  # 64 -> 32 after the deadline floored

    def test_floored_out_holds(self):
        clock = VirtualClock()
        core = build_core(clock, slo_p99_us=10.0, min_deadline_us=800.0,
                          max_batch=64, min_batch=64)
        drive(core, clock, 4)
        assert core.deadline_us == 800.0
        assert core.batch_close == 64
        assert all(d == "hold" for d, _, _ in core.controller.history)
        assert core.controller.retunes == 0

    def test_retunes_counted_in_metrics(self):
        clock = VirtualClock()
        core = build_core(clock, slo_p99_us=10.0)
        drive(core, clock, 2)
        assert core.metrics.value(
            "server_retunes_total", direction="tighten"
        ) == core.controller.retunes > 0


class TestRelax:
    def test_headroom_grows_batch_toward_cap(self):
        clock = VirtualClock()
        core = build_core(clock, slo_p99_us=1e9, batch_cap=256)
        drive(core, clock, 4)
        assert core.batch_close == 256  # 64 -> 128 -> 256
        assert core.controller.history[0][0] == "relax"

    def test_at_cap_deadline_stretches(self):
        clock = VirtualClock()
        core = build_core(clock, slo_p99_us=1e9, batch_cap=64,
                          max_deadline_us=3200.0)
        drive(core, clock, 1)
        assert core.batch_close == 64
        assert core.deadline_us == 1600.0

    def test_shed_window_blocks_relaxing(self):
        clock = VirtualClock()
        core = build_core(clock, slo_p99_us=1e9, batch_cap=256,
                          queue_depth=32, high_water=1.0)
        # overfill each deadline window: 32 admitted, 8 shed per round
        for _ in range(2):
            for i in range(40):
                core.offer("lookup", KEYS[i])
            clock.advance(800.0)
            core.poll()
        assert core.sheds > 0
        assert core.controller.history  # a window closed with sheds
        assert all(d != "relax" for d, _, _ in core.controller.history)

    def test_hysteresis_band_holds(self):
        # p99 between half the SLO and the SLO: no knob moves
        clock = VirtualClock()
        core = build_core(clock, slo_p99_us=1e9, batch_cap=64,
                          max_deadline_us=800.0)
        drive(core, clock, 2)
        # both knobs already at their caps: relax has nowhere to go
        assert core.controller.history[0][0] == "hold"


class TestAutotuneCoupling:
    def test_relax_lands_on_probed_points(self):
        surface = {
            TunePoint(32, 8): 50.0,
            TunePoint(64, 8): 80.0,
            TunePoint(128, 8): 60.0,   # probed worse than 64
            TunePoint(256, 8): 100.0,
        }

        class _Tune:
            def best_under(self, max_batch=None):
                best = None
                for p, r in surface.items():
                    if max_batch is not None and p.batch > max_batch:
                        continue
                    if best is None or r > best[1]:
                        best = (p, r)
                return best[0]

        clock = VirtualClock()
        # global cap 128: the sweep says 64 beats 128, so the knob
        # holds at the probed optimum instead of blindly doubling
        core = build_core(clock, slo_p99_us=1e9, batch_cap=128,
                          tune=_Tune())
        drive(core, clock, 2)
        assert core.batch_close == 64

        clock2 = VirtualClock()
        # cap 256 unlocks the better probed point: one jump, no ladder
        core2 = build_core(clock2, slo_p99_us=1e9, batch_cap=256,
                           tune=_Tune())
        drive(core2, clock2, 2)
        assert core2.batch_close == 256

    def test_config_threads_tune_through(self):
        clock = VirtualClock()
        core = build_core(clock, slo_p99_us=50.0, tune=None)
        assert core.controller is not None
        assert core.controller.slo_p99_us == 50.0
        assert core.controller.interval == 64
