"""Unit tests for out-of-core hot/cold partitioning (§5.1)."""

import numpy as np
import pytest

from repro.cuart.partition import PartitionedIndex
from repro.errors import ReproError
from repro.workloads import random_keys


@pytest.fixture(scope="module")
def corpus():
    keys = random_keys(3000, 8, seed=51)
    return keys, {k: i for i, k in enumerate(keys)}


class TestBuild:
    def test_budget_respected(self, corpus):
        keys, _ = corpus
        idx = PartitionedIndex(device_budget_bytes=64 * 1024)
        idx.populate((k, i) for i, k in enumerate(keys))
        st = idx.stats()
        assert st.device_bytes <= st.budget_bytes
        assert 0 < st.hot_key_fraction < 1.0

    def test_huge_budget_everything_hot(self, corpus):
        keys, _ = corpus
        idx = PartitionedIndex(device_budget_bytes=1 << 30)
        idx.populate((k, i) for i, k in enumerate(keys))
        assert idx.stats().hot_key_fraction == pytest.approx(1.0)

    def test_invalid_budget(self):
        with pytest.raises(ReproError):
            PartitionedIndex(device_budget_bytes=0)

    def test_lookup_before_populate(self):
        idx = PartitionedIndex(device_budget_bytes=1024)
        with pytest.raises(ReproError):
            idx.lookup([b"xx"])


class TestRouting:
    def test_all_lookups_correct_regardless_of_placement(self, corpus):
        keys, oracle = corpus
        idx = PartitionedIndex(device_budget_bytes=96 * 1024)
        idx.populate((k, i) for i, k in enumerate(keys))
        probes = keys[::3] + [b"\xfe" * 8, b"\x00" * 8]
        got = idx.lookup(probes)
        assert got == [oracle.get(k) for k in probes]

    def test_queries_split_between_device_and_host(self, corpus):
        keys, _ = corpus
        idx = PartitionedIndex(device_budget_bytes=96 * 1024)
        idx.populate((k, i) for i, k in enumerate(keys))
        idx.lookup(keys[:500])
        assert idx.device_queries > 0
        assert idx.host_queries > 0

    def test_device_log_produced(self, corpus):
        keys, _ = corpus
        idx = PartitionedIndex(device_budget_bytes=1 << 30)
        idx.populate((k, i) for i, k in enumerate(keys))
        idx.lookup(keys[:64])
        assert idx.last_log.total_transactions > 0


class TestRebalance:
    def test_skewed_access_migrates_hot_partitions(self, corpus):
        keys, oracle = corpus
        idx = PartitionedIndex(device_budget_bytes=48 * 1024)
        idx.populate((k, i) for i, k in enumerate(keys))
        # hammer the currently-cold partitions
        cold_keys = [k for k in keys if k[0] not in idx.hot_set]
        assert cold_keys, "need cold keys for the scenario"
        for _ in range(3):
            idx.lookup(cold_keys[:400])
        before = set(idx.hot_set)
        changed = idx.rebalance()
        assert changed
        after = set(idx.hot_set)
        # at least one hammered partition was promoted
        hammered = {k[0] for k in cold_keys[:400]}
        assert hammered & after
        assert before != after
        # correctness preserved after the migration
        probes = keys[::5]
        assert idx.lookup(probes) == [oracle[k] for k in probes]

    def test_rebalance_without_change_is_cheap(self, corpus):
        keys, _ = corpus
        idx = PartitionedIndex(device_budget_bytes=1 << 30)
        idx.populate((k, i) for i, k in enumerate(keys))
        idx.lookup(keys[:100])
        assert not idx.rebalance()  # everything already hot

    def test_counters_reset_after_rebalance(self, corpus):
        keys, _ = corpus
        idx = PartitionedIndex(device_budget_bytes=48 * 1024)
        idx.populate((k, i) for i, k in enumerate(keys))
        idx.lookup(keys[:100])
        idx.rebalance()
        assert idx.access_counts.sum() == 0
        assert idx.stats().rebalances == 1


class TestEdgeCases:
    def test_single_leaf_tree(self):
        idx = PartitionedIndex(device_budget_bytes=1024)
        idx.populate([(b"only", 1)])
        assert idx.lookup([b"only", b"other"]) == [1, None]

    def test_shared_root_prefix_single_partition(self):
        idx = PartitionedIndex(device_budget_bytes=1 << 20)
        idx.populate([(b"ppA", 1), (b"ppB", 2)])
        assert idx.lookup([b"ppA", b"ppB"]) == [1, 2]
        assert len(idx.hot_set) == 1

    def test_root_table_depth(self):
        keys = random_keys(500, 8, seed=52)
        idx = PartitionedIndex(device_budget_bytes=1 << 30, root_table_depth=2)
        idx.populate((k, i) for i, k in enumerate(keys))
        assert idx.lookup(keys[:50]) == list(range(50))


class TestPartitionedWrites:
    def test_updates_route_both_ways(self, corpus):
        keys, oracle = corpus
        idx = PartitionedIndex(device_budget_bytes=96 * 1024)
        idx.populate((k, i) for i, k in enumerate(keys))
        hot = [k for k in keys if k[0] in idx.hot_set][:10]
        cold = [k for k in keys if k[0] not in idx.hot_set][:10]
        assert hot and cold
        items = [(k, 50_000 + j) for j, k in enumerate(hot + cold)]
        found = idx.update(items)
        assert all(found)
        got = idx.lookup(hot + cold)
        assert got == [50_000 + j for j in range(len(items))]

    def test_update_missing_key(self, corpus):
        keys, _ = corpus
        idx = PartitionedIndex(device_budget_bytes=96 * 1024)
        idx.populate((k, i) for i, k in enumerate(keys))
        assert idx.update([(b"\xed" * 8, 1)]) == [False]

    def test_deletes_route_both_ways(self, corpus):
        keys, oracle = corpus
        idx = PartitionedIndex(device_budget_bytes=96 * 1024)
        idx.populate((k, i) for i, k in enumerate(keys))
        hot = [k for k in keys if k[0] in idx.hot_set][:5]
        cold = [k for k in keys if k[0] not in idx.hot_set][:5]
        out = idx.delete(hot + cold)
        assert all(out)
        assert idx.lookup(hot + cold) == [None] * 10

    def test_writes_survive_rebalance(self, corpus):
        keys, oracle = corpus
        idx = PartitionedIndex(device_budget_bytes=64 * 1024)
        idx.populate((k, i) for i, k in enumerate(keys))
        victim, target = keys[3], keys[4]
        idx.update([(target, 777)])
        idx.delete([victim])
        # skew accesses, force a migration, then verify the writes held
        cold_keys = [k for k in keys if k[0] not in idx.hot_set][:300]
        for _ in range(3):
            idx.lookup(cold_keys)
        idx.rebalance()
        got = idx.lookup([victim, target])
        assert got == [None, 777]
