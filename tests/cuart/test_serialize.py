"""Unit tests for layout persistence."""

import numpy as np
import pytest

from repro.cuart.layout import CuartLayout, LongKeyStrategy
from repro.cuart.lookup import lookup_batch
from repro.cuart.serialize import FORMAT_VERSION, load_layout, save_layout
from repro.errors import ReproError
from repro.util.keys import keys_to_matrix
from repro.workloads import build_tree, random_keys

from tests.conftest import batch_of, make_tree


@pytest.fixture()
def saved(tmp_path, medium_tree):
    layout = CuartLayout(medium_tree)
    path = tmp_path / "index.npz"
    save_layout(layout, path)
    return path, layout


class TestRoundtrip:
    def test_lookups_identical(self, saved, medium_keys):
        path, original = saved
        loaded = load_layout(path)
        mat, lens = batch_of(medium_keys[:300] + [b"\xee" * 8])
        a = lookup_batch(original, mat, lens)
        b = lookup_batch(loaded, mat, lens)
        assert (a.values == b.values).all()

    def test_loaded_layout_metadata(self, saved):
        path, original = saved
        loaded = load_layout(path)
        assert loaded.root_link == original.root_link
        assert loaded.max_levels == original.max_levels
        for code in (1, 2, 3, 4, 5, 6, 7):
            assert loaded.node_count(code) == original.node_count(code)

    def test_loaded_supports_updates(self, saved, medium_keys):
        from repro.cuart.update import UpdateEngine

        path, _ = saved
        loaded = load_layout(path)
        mat, lens = batch_of(medium_keys[:4])
        eng = UpdateEngine(loaded, hash_slots=1 << 10)
        res = eng.apply(mat, lens, np.arange(4).astype(np.uint64))
        assert res.found.all()
        after = lookup_batch(loaded, mat, lens)
        assert after.values.tolist() == [0, 1, 2, 3]

    def test_loaded_supports_range_queries(self, saved, medium_keys):
        from repro.cuart.range_query import range_query

        path, _ = saved
        loaded = load_layout(path)
        ordered = sorted(medium_keys)
        res = range_query(loaded, ordered[5], ordered[15])
        assert res.keys == ordered[5:16]

    def test_loaded_supports_device_inserts(self, tmp_path):
        from repro.cuart.insert import InsertEngine

        tree = build_tree(random_keys(300, 8, seed=61))
        layout = CuartLayout(tree, spare=0.5)
        path = tmp_path / "spare.npz"
        save_layout(layout, path)
        loaded = load_layout(path)
        eng = InsertEngine(loaded, hash_slots=1 << 9)
        mat, lens = keys_to_matrix([b"\xfd" * 8])
        res = eng.apply(mat, lens, np.array([42], dtype=np.uint64))
        assert res.n_inserted == 1
        assert lookup_batch(loaded, mat, lens).values.tolist() == [42]

    def test_long_key_strategies_survive(self, tmp_path):
        long_key = b"L" * 40
        tree = make_tree([(long_key, 7), (b"short", 1)])
        layout = CuartLayout(tree, long_keys=LongKeyStrategy.HOST_LINK)
        path = tmp_path / "hostlink.npz"
        save_layout(layout, path)
        loaded = load_layout(path)
        assert loaded.host_leaves == [(long_key, 7)]
        assert loaded.long_keys is LongKeyStrategy.HOST_LINK

    def test_free_lists_survive(self, tmp_path, medium_tree, medium_keys):
        from repro.cuart.delete import delete_batch

        layout = CuartLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:3])
        delete_batch(layout, mat, lens, hash_slots=1 << 9)
        path = tmp_path / "deleted.npz"
        save_layout(layout, path)
        loaded = load_layout(path)
        assert loaded.free_leaves == layout.free_leaves


class TestFormatGuards:
    def test_version_rejected(self, saved, tmp_path):
        import json

        path, _ = saved
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta_json"]).decode())
        meta["format"] = FORMAT_VERSION + 1
        data["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ).copy()
        bad = tmp_path / "bad.npz"
        np.savez(bad, **data)
        with pytest.raises(ReproError):
            load_layout(bad)

    def test_loaded_layout_is_fresh(self, saved):
        path, _ = saved
        loaded = load_layout(path)
        loaded.check_fresh()  # placeholder tree: never stale
