"""Unit tests for the compacted upper-layer table (section 3.2.2)."""

import numpy as np
import pytest

from repro.constants import LINK_EMPTY, PAPER_ROOT_TABLE_BYTES
from repro.cuart.layout import CuartLayout
from repro.cuart.root_table import RootTable
from repro.errors import SimulationError
from repro.gpusim.transactions import TransactionLog
from repro.util.keys import keys_to_matrix
from repro.util.packing import link_type

from tests.conftest import make_tree


class TestConstruction:
    def test_table_size(self, medium_tree):
        lay = CuartLayout(medium_tree)
        t = RootTable(lay, k=2)
        assert t.links.size == 256**2
        assert t.nbytes == 256**2 * 8

    def test_paper_scale_constant(self):
        # 2^24 links x 8 bytes = the paper's "128MB of memory consumption"
        assert PAPER_ROOT_TABLE_BYTES == 128 * 1024 * 1024

    def test_invalid_depth(self, medium_tree):
        lay = CuartLayout(medium_tree)
        with pytest.raises(SimulationError):
            RootTable(lay, k=0)
        with pytest.raises(SimulationError):
            RootTable(lay, k=4)

    def test_empty_tree_table_is_empty(self):
        from repro.art.tree import AdaptiveRadixTree

        lay = CuartLayout(AdaptiveRadixTree())
        t = RootTable(lay, k=1)
        assert (t.links == np.uint64(0)).all()

    def test_whole_table_covered_for_nonempty_tree(self, medium_tree):
        lay = CuartLayout(medium_tree)
        t = RootTable(lay, k=1)
        # every entry points somewhere (at worst the root at depth 0)
        assert (t.links != np.uint64(0)).all() or link_type(lay.root_link) != LINK_EMPTY

    def test_depths_bounded_by_k(self, medium_tree):
        lay = CuartLayout(medium_tree)
        for k in (1, 2, 3):
            t = RootTable(lay, k=k)
            assert int(t.depths.max()) <= k


class TestDispatch:
    def test_entries_refine_with_depth(self):
        # two-level tree: byte-0 fans out, so at k=2 the table should
        # dispatch past the root for covered prefixes
        pairs = [(bytes([b, b2, 7]), b * 256 + b2) for b in range(8) for b2 in (1, 9)]
        lay = CuartLayout(make_tree(pairs))
        t = RootTable(lay, k=2)
        mat, lens = keys_to_matrix([pairs[0][0]])
        links, depths, covered = t.start_links(mat, lens)
        assert covered.all()
        assert int(depths[0]) == 2  # skipped two levels

    def test_uncovered_short_keys(self):
        pairs = [(bytes([1, 2, 3, 4]), 1)]
        lay = CuartLayout(make_tree(pairs))
        t = RootTable(lay, k=3)
        mat, lens = keys_to_matrix([bytes([1, 2])], width=4)
        links, depths, covered = t.start_links(mat, lens)
        assert not covered[0]

    def test_log_accounting(self, medium_tree, medium_keys):
        lay = CuartLayout(medium_tree)
        t = RootTable(lay, k=2)
        log = TransactionLog()
        mat, lens = keys_to_matrix(medium_keys[:64])
        t.start_links(mat, lens, log)
        assert log.total_transactions == 64
        assert log.rounds[-1].distinct_bytes > 0

    def test_stale_layout_rejected(self, medium_tree):
        lay = CuartLayout(medium_tree)
        medium_tree.insert(b"\x01\x02\x03\x04\x05\x06\x07\x99", 1)
        from repro.errors import StaleLayoutError

        with pytest.raises(StaleLayoutError):
            RootTable(lay, k=2)
        medium_tree.delete(b"\x01\x02\x03\x04\x05\x06\x07\x99")
