"""Unit + property tests for the bucketed conflict table (section 3.4).

The bucketed layout must be a drop-in replacement for the linear table —
identical winner semantics, identical ``HashTableFullError`` contract —
while charging 128-byte coalesced transactions per ``(round, warp,
bucket)`` probe group instead of a 16-byte transaction per slot step.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuart.hashtable import (
    BUCKET_BYTES,
    BUCKET_RECORDS,
    SLOT_BYTES,
    AtomicMaxHashTable,
    BucketedAtomicMaxHashTable,
    make_conflict_table,
)
from repro.errors import HashTableFullError, SimulationError
from repro.gpusim.simt import WARP_SIZE, bucket_probe_groups
from repro.gpusim.transactions import TransactionLog


def btable(slots=256, log=None):
    return BucketedAtomicMaxHashTable(slots, log=log)


class TestBasics:
    def test_insert_and_lookup(self):
        t = btable()
        t.insert_max(np.array([10, 20, 30], dtype=np.uint64),
                     np.array([1, 2, 3]))
        assert t.lookup(
            np.array([10, 20, 30], dtype=np.uint64)
        ).tolist() == [1, 2, 3]

    def test_max_semantics(self):
        t = btable()
        keys = np.array([42, 42, 42, 7], dtype=np.uint64)
        prios = np.array([5, 99, 23, 1])
        t.insert_max(keys, prios)
        assert t.lookup(np.array([42, 7], dtype=np.uint64)).tolist() == [99, 1]

    def test_missing_key_returns_minus_one(self):
        t = btable()
        t.insert_max(np.array([1], dtype=np.uint64), np.array([0]))
        assert t.lookup(np.array([999], dtype=np.uint64)).tolist() == [-1]

    def test_reset(self):
        t = btable()
        t.insert_max(np.array([5], dtype=np.uint64), np.array([10]))
        t.reset()
        assert t.occupied == 0
        assert t.transactions == 0 and t.atomics == 0
        assert t.lookup(np.array([5], dtype=np.uint64)).tolist() == [-1]

    def test_zero_key_rejected(self):
        with pytest.raises(SimulationError):
            btable().insert_max(np.array([0], dtype=np.uint64), np.array([1]))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SimulationError):
            btable(slots=100)

    def test_sub_bucket_size_rejected(self):
        # 4 is a power of two but less than one full bucket
        with pytest.raises(SimulationError):
            btable(slots=4)

    def test_factory_builds_both_variants(self):
        assert isinstance(
            make_conflict_table(64, variant="linear"), AtomicMaxHashTable
        )
        t = make_conflict_table(64, variant="bucketed")
        assert isinstance(t, BucketedAtomicMaxHashTable)
        assert t.variant == "bucketed"
        with pytest.raises(SimulationError):
            make_conflict_table(64, variant="quadratic")


class TestCapacity:
    def test_full_table_raises(self):
        t = btable(slots=8)
        keys = np.arange(1, 10, dtype=np.uint64)  # 9 distinct > 8 records
        with pytest.raises(HashTableFullError):
            t.insert_max(keys, np.arange(9))

    def test_exactly_full_is_fine(self):
        t = btable(slots=8)  # exactly one bucket
        keys = np.arange(1, 9, dtype=np.uint64)
        t.insert_max(keys, np.arange(8))
        assert t.occupied == 8
        assert t.load_factor == 1.0
        assert t.lookup(keys).tolist() == list(range(8))

    def test_near_capacity_many_buckets(self):
        # fill 63/64 records across 8 buckets: the claim race must spill
        # full buckets into neighbours without losing anyone
        t = btable(slots=64)
        keys = (np.arange(1, 64, dtype=np.uint64) * 2654435761) | 1
        keys = np.unique(keys)
        t.insert_max(keys, np.arange(keys.size))
        assert t.occupied == keys.size
        assert (t.lookup(keys) >= 0).all()


class TestCoalescedAccounting:
    def test_transactions_are_cache_line_sized(self):
        log = TransactionLog()
        t = btable(slots=64, log=log)
        keys = np.arange(1, 33, dtype=np.uint64)
        t.insert_max(keys, np.arange(32))
        t.lookup(keys)
        assert log.total_transactions > 0
        # every recorded class is one aligned 128-byte bucket line
        assert set(log.by_class) == {(BUCKET_BYTES, True)}
        assert log.atomic_ops >= 32  # >= one atomicMax per thread

    def test_probe_groups_equal_transactions(self):
        t = btable(slots=128)
        rng = np.random.default_rng(3)
        pool = rng.choice(2**40, size=100, replace=False).astype(np.uint64) + 1
        keys = pool[rng.integers(0, pool.size, size=400)]
        t.resolve_winners(keys, np.arange(keys.size))
        assert t.transactions == t.probe_groups > 0

    def test_duplicate_warp_shares_one_transaction(self):
        # a full warp hammering one key costs one coalesced probe group,
        # not 32 slot walks: far fewer transactions than threads
        t = btable(slots=64)
        keys = np.full(WARP_SIZE, 77, dtype=np.uint64)
        t.resolve_winners(keys, np.arange(WARP_SIZE))
        # insert pass: 1 group; read-back: compacted to 1 distinct lane
        assert t.transactions == 2
        assert t.total_probes == WARP_SIZE  # every thread still walked

    def test_fewer_transactions_than_linear_under_conflicts(self):
        rng = np.random.default_rng(11)
        pool = rng.choice(2**40, size=240, replace=False).astype(np.uint64) + 1
        keys = pool[rng.integers(0, pool.size, size=2048)]  # heavy dups
        prios = np.arange(keys.size, dtype=np.int64)
        lin = AtomicMaxHashTable(256)
        buc = btable(slots=256)
        wl = lin.resolve_winners(keys, prios)
        wb = buc.resolve_winners(keys, prios)
        assert np.array_equal(wl, wb)
        assert buc.transactions * 4 <= lin.transactions


class TestVariantEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 23, 91])
    def test_winners_match_linear_under_duplicates(self, seed):
        rng = np.random.default_rng(seed)
        pool = rng.choice(2**40, size=300, replace=False).astype(np.uint64) + 1
        keys = pool[rng.integers(0, pool.size, size=1500)]
        prios = rng.permutation(keys.size).astype(np.int64)
        lin, buc = AtomicMaxHashTable(512), btable(slots=512)
        assert np.array_equal(
            lin.resolve_winners(keys, prios), buc.resolve_winners(keys, prios)
        )
        uniq = np.unique(keys)
        assert np.array_equal(lin.lookup(uniq), buc.lookup(uniq))

    @pytest.mark.parametrize("seed", [1, 5])
    def test_winners_match_linear_near_capacity(self, seed):
        rng = np.random.default_rng(seed)
        slots = 256
        pool = rng.choice(2**40, size=250, replace=False).astype(np.uint64) + 1
        keys = pool[rng.integers(0, pool.size, size=4096)]  # load ~0.98
        prios = np.arange(keys.size, dtype=np.int64)
        lin, buc = AtomicMaxHashTable(slots), btable(slots=slots)
        assert np.array_equal(
            lin.resolve_winners(keys, prios), buc.resolve_winners(keys, prios)
        )
        assert lin.occupied == buc.occupied == pool.size


class TestSameKeyRewalk:
    """Regression for the ``same``-hit path in ``_place``: a key claimed
    by an earlier batch must be *found* (not re-claimed) on re-insert,
    re-walking — and re-charging — its full probe chain."""

    @pytest.mark.parametrize("variant", ["linear", "bucketed"])
    def test_reinsert_finds_existing_slot(self, variant):
        # capacity headroom: the conservative full-check counts every
        # distinct key in the batch as a fresh claim, even re-inserts
        t = make_conflict_table(1024, variant=variant)
        rng = np.random.default_rng(17)
        keys = rng.choice(2**40, size=200, replace=False).astype(np.uint64) + 1
        t.insert_max(keys, np.zeros(keys.size, dtype=np.int64))
        occupied = t.occupied
        first_probes = t.total_probes
        t.insert_max(keys, np.arange(keys.size))
        assert t.occupied == occupied  # nothing newly claimed
        assert t.total_probes >= 2 * first_probes  # chains re-walked
        assert np.array_equal(t.lookup(keys), np.arange(keys.size))

    @pytest.mark.parametrize("variant", ["linear", "bucketed"])
    def test_rewalk_past_colliders_terminates_at_own_slot(self, variant):
        # grow the table batch by batch so re-inserted keys walk chains
        # whose prefix is occupied by *other* keys: the same-hit must
        # stop the walk exactly at the key's own slot every time
        t = make_conflict_table(256, variant=variant)
        rng = np.random.default_rng(29)
        keys = rng.choice(2**40, size=60, replace=False).astype(np.uint64) + 1
        for stop in (20, 40, 60):
            t.insert_max(keys[:stop], np.arange(stop, dtype=np.int64))
        assert t.occupied == 60
        assert (t.lookup(keys) >= 0).all()
        # max priority sticks per key across the overlapping batches
        assert np.array_equal(t.lookup(keys), np.arange(60, dtype=np.int64))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 2**50), st.integers(0, 10**6)),
        min_size=1,
        max_size=120,
    )
)
def test_matches_dict_max_model(items):
    t = btable(slots=256)
    keys = np.array([k for k, _ in items], dtype=np.uint64)
    prios = np.array([p for _, p in items], dtype=np.int64)
    t.insert_max(keys, prios)
    model = {}
    for k, p in items:
        model[k] = max(model.get(k, -1), p)
    uniq = np.array(sorted(model), dtype=np.uint64)
    assert t.lookup(uniq).tolist() == [model[int(k)] for k in uniq]


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 200), st.integers(0, 2**31))
def test_never_loses_keys_below_capacity(n, seed):
    rng = np.random.default_rng(seed)
    keys = rng.choice(2**40, size=n, replace=False).astype(np.uint64) + 1
    t = btable(slots=256)
    t.insert_max(keys, np.arange(n))
    assert (t.lookup(keys) >= 0).all()
    assert t.occupied == n


class TestBucketProbeGroups:
    """Unit tests for the simt-level coalescing model."""

    def test_empty_input(self):
        counts = bucket_probe_groups(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 16
        )
        assert counts.size == 0

    def test_single_thread_chain(self):
        # one thread probing 3 buckets: 3 groups of one lane each
        counts = bucket_probe_groups(
            np.array([5]), np.array([3]), 16
        )
        assert sorted(counts.tolist()) == [1, 1, 1]

    def test_full_warp_same_bucket_coalesces(self):
        home = np.zeros(WARP_SIZE, dtype=np.int64)
        steps = np.ones(WARP_SIZE, dtype=np.int64)
        counts = bucket_probe_groups(home, steps, 16)
        assert counts.tolist() == [WARP_SIZE]

    def test_warp_boundary_splits_groups(self):
        # 33 threads over two warps: the same (round, bucket) costs two
        # transactions because coalescing never crosses a warp
        home = np.zeros(WARP_SIZE + 1, dtype=np.int64)
        steps = np.ones(WARP_SIZE + 1, dtype=np.int64)
        counts = bucket_probe_groups(home, steps, 16)
        assert sorted(counts.tolist()) == [1, WARP_SIZE]

    def test_distinct_buckets_do_not_coalesce(self):
        home = np.array([0, 1], dtype=np.int64)
        steps = np.array([1, 1], dtype=np.int64)
        counts = bucket_probe_groups(home, steps, 16)
        assert counts.tolist() == [1, 1]

    def test_chains_overlap_only_within_rounds(self):
        # two same-warp threads, homes 0 and 1, two steps each: round 0
        # touches {0, 1}, round 1 touches {1, 2} — 4 groups, because
        # thread B reaches bucket 1 in a different lockstep round than A
        home = np.array([0, 1], dtype=np.int64)
        steps = np.array([2, 2], dtype=np.int64)
        counts = bucket_probe_groups(home, steps, 16)
        assert counts.tolist() == [1, 1, 1, 1]

    def test_wraparound_modulo_buckets(self):
        counts = bucket_probe_groups(
            np.array([15]), np.array([2]), 16
        )
        assert sorted(counts.tolist()) == [1, 1]  # buckets 15 then 0

    def test_layout_constants(self):
        assert BUCKET_BYTES == BUCKET_RECORDS * SLOT_BYTES == 128
