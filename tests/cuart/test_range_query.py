"""Unit + property tests for range/prefix queries over the ordered leaf
buffers (section 3.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuart.layout import CuartLayout
from repro.cuart.range_query import prefix_query, range_query
from repro.util.keys import encode_int

from tests.conftest import make_tree


@pytest.fixture(scope="module")
def mixed_size_layout():
    """Keys spanning all three leaf buffers."""
    pairs = []
    for i in range(60):
        pairs.append((encode_int(i * 3, 4), i))  # leaf8
    for i in range(60):
        pairs.append((b"M" + encode_int(i * 5, 11), 1000 + i))  # leaf16
    for i in range(60):
        pairs.append((b"Z" * 17 + encode_int(i * 7, 8), 2000 + i))  # leaf32
    tree = make_tree(pairs)
    return CuartLayout(tree), dict(pairs)


class TestRangeQuery:
    def test_full_range_returns_everything(self, mixed_size_layout):
        lay, oracle = mixed_size_layout
        res = range_query(lay, b"\x00", b"\xff" * 32)
        assert len(res) == len(oracle)
        assert res.keys == sorted(oracle)

    def test_slices_reported_per_buffer(self, mixed_size_layout):
        lay, oracle = mixed_size_layout
        res = range_query(lay, b"\x00", b"\xff" * 32)
        for code, (start, end) in res.slices.items():
            assert 0 <= start <= end <= lay.node_count(code)
        assert sum(e - s for s, e in res.slices.values()) == len(oracle)

    def test_interval_bounds_inclusive(self, mixed_size_layout):
        lay, oracle = mixed_size_layout
        keys = sorted(oracle)
        res = range_query(lay, keys[10], keys[20])
        assert res.keys == keys[10:21]
        assert res.values.tolist() == [oracle[k] for k in keys[10:21]]

    def test_empty_interval(self, mixed_size_layout):
        lay, _ = mixed_size_layout
        res = range_query(lay, b"\xfe", b"\xfd")
        assert len(res) == 0

    def test_interval_between_keys(self, mixed_size_layout):
        lay, _ = mixed_size_layout
        res = range_query(lay, encode_int(1, 4), encode_int(2, 4))
        assert len(res) == 0

    def test_bound_longer_than_leaf_width(self, mixed_size_layout):
        lay, oracle = mixed_size_layout
        # lo longer than the 4-byte keys: the 4-byte prefix-equal key is
        # a proper prefix of lo and must be excluded
        lo = encode_int(0, 4) + b"\x01"
        res = range_query(lay, lo, b"\xff" * 32)
        assert encode_int(0, 4) not in res.keys

    def test_transactions_charged(self, mixed_size_layout):
        lay, _ = mixed_size_layout
        res = range_query(lay, b"\x00", b"\xff" * 32)
        assert res.log.total_transactions > 0


class TestPrefixQuery:
    def test_prefix_hits_only_matching(self, mixed_size_layout):
        lay, oracle = mixed_size_layout
        res = prefix_query(lay, b"M")
        expect = sorted(k for k in oracle if k.startswith(b"M"))
        assert res.keys == expect

    def test_empty_prefix_returns_all(self, mixed_size_layout):
        lay, oracle = mixed_size_layout
        res = prefix_query(lay, b"")
        assert len(res) == len(oracle)

    def test_prefix_longer_than_any_key(self, mixed_size_layout):
        lay, _ = mixed_size_layout
        res = prefix_query(lay, b"Z" * 40)
        assert len(res) == 0

    def test_exact_key_as_prefix(self, mixed_size_layout):
        lay, oracle = mixed_size_layout
        k = sorted(oracle)[0]
        res = prefix_query(lay, k)
        assert res.keys == [k]


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=2, max_size=6), st.integers(0, 2**30), min_size=1,
        max_size=120,
    ),
    st.binary(min_size=0, max_size=7),
    st.binary(min_size=0, max_size=7),
)
def test_range_matches_sorted_model(pairs, a, b):
    # prune to a prefix-free set (radix-tree precondition)
    pruned = {}
    for k in sorted(pairs):
        if not any(k != o and k.startswith(o) for o in pruned):
            pruned[k] = pairs[k]
    lo, hi = (a, b) if a <= b else (b, a)
    if not lo:
        lo = b"\x00"
    lay = CuartLayout(make_tree(pruned.items()))
    res = range_query(lay, lo, hi)
    expect = sorted(k for k in pruned if lo <= k <= hi)
    assert res.keys == expect
    assert [int(v) for v in res.values] == [pruned[k] for k in expect]


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=2, max_size=6), st.integers(0, 2**30), min_size=1,
        max_size=100,
    ),
    st.binary(min_size=0, max_size=4),
)
def test_prefix_matches_model(pairs, prefix):
    pruned = {}
    for k in sorted(pairs):
        if not any(k != o and k.startswith(o) for o in pruned):
            pruned[k] = pairs[k]
    lay = CuartLayout(make_tree(pruned.items()))
    res = prefix_query(lay, prefix)
    expect = sorted(k for k in pruned if k.startswith(prefix))
    assert res.keys == expect


class TestCountRange:
    def test_count_matches_materialized(self, mixed_size_layout):
        from repro.cuart.range_query import count_range

        lay, oracle = mixed_size_layout
        keys = sorted(oracle)
        lo, hi = keys[20], keys[120]
        assert count_range(lay, lo, hi) == len(range_query(lay, lo, hi))

    def test_count_excludes_deleted(self):
        from repro.cuart.delete import delete_batch
        from repro.cuart.range_query import count_range
        from repro.util.keys import keys_to_matrix

        keys = [encode_int(v, 4) for v in range(50)]
        lay = CuartLayout(make_tree((k, i) for i, k in enumerate(keys)))
        mat, lens = keys_to_matrix(keys[10:15])
        delete_batch(lay, mat, lens, hash_slots=256)
        assert count_range(lay, keys[0], keys[-1]) == 45

    def test_count_cheaper_than_materialize(self, mixed_size_layout):
        from repro.cuart.range_query import count_range
        from repro.gpusim.transactions import TransactionLog

        lay, oracle = mixed_size_layout
        keys = sorted(oracle)
        log_c = TransactionLog()
        count_range(lay, keys[0], keys[-1], log=log_c)
        log_m = TransactionLog()
        range_query(lay, keys[0], keys[-1], log=log_m)
        assert log_c.total_bytes < log_m.total_bytes

    def test_empty_window(self, mixed_size_layout):
        from repro.cuart.range_query import count_range

        lay, _ = mixed_size_layout
        assert count_range(lay, b"\xfe", b"\xfd") == 0
