"""Unit tests for the CPU-side CuART layout engine (figure 7)."""

import pytest

from repro.art.stats import collect_stats
from repro.cuart.cpu_lookup import cpu_lookup_flat, modeled_cpu_throughput
from repro.cuart.layout import CuartLayout
from repro.gpusim.devices import WORKSTATION_CPU
from repro.workloads import build_tree, random_keys

from tests.conftest import batch_of


@pytest.fixture(scope="module")
def stats_pair():
    small = collect_stats(build_tree(random_keys(512, 16, seed=1)).root)
    large = collect_stats(build_tree(random_keys(16384, 16, seed=1)).root)
    return small, large


class TestFlatCpuLookup:
    def test_results_correct(self):
        keys = random_keys(400, 16, seed=2)
        lay = CuartLayout(build_tree(keys))
        mat, lens = batch_of(keys)
        res = cpu_lookup_flat(lay, mat, lens)
        assert res.hits.all()
        assert res.values.tolist() == list(range(400))


class TestModeledThroughput:
    def test_flat_layout_faster(self, stats_pair):
        _, large = stats_pair
        art = modeled_cpu_throughput(large, WORKSTATION_CPU, contiguous=False)
        flat = modeled_cpu_throughput(large, WORKSTATION_CPU, contiguous=True)
        assert flat > art

    def test_speedup_grows_with_tree_size(self, stats_pair):
        small, large = stats_pair

        def speedup(s):
            return modeled_cpu_throughput(
                s, WORKSTATION_CPU, contiguous=True
            ) / modeled_cpu_throughput(s, WORKSTATION_CPU, contiguous=False)

        assert speedup(large) > speedup(small)

    def test_threads_scale(self, stats_pair):
        _, large = stats_pair
        one = modeled_cpu_throughput(
            large, WORKSTATION_CPU, contiguous=True, threads=1
        )
        twelve = modeled_cpu_throughput(
            large, WORKSTATION_CPU, contiguous=True, threads=12
        )
        assert twelve == pytest.approx(12 * one, rel=0.01)
