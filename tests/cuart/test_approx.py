"""Unit + property tests for approximate (Hamming) lookups."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuart.approx import approx_lookup
from repro.cuart.layout import CuartLayout
from repro.errors import ReproError
from repro.workloads import build_tree, random_keys

from tests.conftest import make_tree


def hamming(a: bytes, b: bytes) -> int:
    assert len(a) == len(b)
    return sum(1 for x, y in zip(a, b) if x != y)


@pytest.fixture(scope="module")
def fuzzy_layout():
    keys = random_keys(1200, 6, seed=121)
    return CuartLayout(build_tree(keys)), keys


class TestExactSubset:
    def test_distance_zero_equals_exact_lookup(self, fuzzy_layout):
        lay, keys = fuzzy_layout
        res = approx_lookup(lay, keys[17], max_mismatches=0)
        assert len(res) == 1
        assert res.matches[0].key == keys[17]
        assert res.matches[0].value == 17
        assert res.matches[0].distance == 0

    def test_missing_key_distance_zero(self, fuzzy_layout):
        lay, _ = fuzzy_layout
        assert len(approx_lookup(lay, b"\xee" * 6, max_mismatches=0)) == 0


class TestFuzzyMatching:
    def test_single_byte_corruption_recovered(self, fuzzy_layout):
        lay, keys = fuzzy_layout
        corrupted = bytearray(keys[50])
        corrupted[2] ^= 0xFF
        res = approx_lookup(lay, bytes(corrupted), max_mismatches=1)
        found = {m.key for m in res.matches}
        assert keys[50] in found
        target = next(m for m in res.matches if m.key == keys[50])
        assert target.distance == 1

    def test_corruption_in_first_byte(self, fuzzy_layout):
        lay, keys = fuzzy_layout
        corrupted = bytes([keys[9][0] ^ 0x01]) + keys[9][1:]
        res = approx_lookup(lay, corrupted, max_mismatches=1)
        assert keys[9] in {m.key for m in res.matches}

    def test_budget_respected(self, fuzzy_layout):
        lay, keys = fuzzy_layout
        corrupted = bytearray(keys[50])
        corrupted[1] ^= 0xFF
        corrupted[4] ^= 0xFF
        assert keys[50] not in {
            m.key for m in approx_lookup(lay, bytes(corrupted), 1).matches
        }
        assert keys[50] in {
            m.key for m in approx_lookup(lay, bytes(corrupted), 2).matches
        }

    def test_matches_sorted_by_distance(self, fuzzy_layout):
        lay, keys = fuzzy_layout
        res = approx_lookup(lay, keys[3], max_mismatches=2)
        dists = [m.distance for m in res.matches]
        assert dists == sorted(dists)
        assert res.best().key == keys[3]

    def test_different_length_never_matches(self):
        lay = CuartLayout(make_tree([(b"abcd", 1), (b"zzzz", 2)]))
        res = approx_lookup(lay, b"abc", max_mismatches=3)
        assert len(res) == 0

    def test_larger_budget_explores_more(self, fuzzy_layout):
        lay, keys = fuzzy_layout
        a = approx_lookup(lay, keys[0], max_mismatches=0)
        b = approx_lookup(lay, keys[0], max_mismatches=2)
        assert b.states_visited > a.states_visited
        assert b.log.total_transactions > a.log.total_transactions

    def test_validation(self, fuzzy_layout):
        lay, _ = fuzzy_layout
        with pytest.raises(ReproError):
            approx_lookup(lay, b"x", max_mismatches=-1)
        with pytest.raises(ReproError):
            approx_lookup(lay, b"", max_mismatches=1)

    def test_empty_layout(self):
        from repro.art.tree import AdaptiveRadixTree

        lay = CuartLayout(AdaptiveRadixTree())
        assert len(approx_lookup(lay, b"abc", 2)) == 0

    def test_long_shared_prefix_beyond_window(self):
        # optimistic prefix skip must not fabricate or lose matches
        p = b"w" * 20
        keys = [p + bytes([b, 5]) for b in range(10)]
        lay = CuartLayout(make_tree((k, i) for i, k in enumerate(keys)))
        probe = bytearray(keys[3])
        probe[5] ^= 0x10  # corrupt inside the skipped window
        res = approx_lookup(lay, bytes(probe), max_mismatches=1)
        assert keys[3] in {m.key for m in res.matches}
        # and the reported distance is the true full-key distance
        m = next(m for m in res.matches if m.key == keys[3])
        assert m.distance == 1


@settings(max_examples=25, deadline=None)
@given(
    st.dictionaries(st.binary(min_size=3, max_size=3), st.integers(0, 2**20),
                    min_size=1, max_size=80),
    st.binary(min_size=3, max_size=3),
    st.integers(0, 2),
)
def test_matches_brute_force(pairs, probe, k):
    lay = CuartLayout(make_tree(pairs.items()))
    res = approx_lookup(lay, probe, max_mismatches=k)
    expect = sorted(
        (hamming(key, probe), key)
        for key in pairs
        if hamming(key, probe) <= k
    )
    got = sorted((m.distance, m.key) for m in res.matches)
    assert got == expect
    for m in res.matches:
        assert m.value == pairs[m.key]
