"""Unit + property tests for device-side structural inserts (§5.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import LINK_LEAF8, LINK_N4, LINK_N16, NIL_VALUE
from repro.cuart.insert import InsertEngine
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import MissReason, lookup_batch
from repro.cuart.root_table import RootTable
from repro.errors import SimulationError
from repro.util.keys import keys_to_matrix
from repro.workloads import build_tree, random_keys

from tests.conftest import batch_of, make_tree


def apply_inserts(layout, items, *, table=None, slots=1 << 10):
    eng = InsertEngine(layout, root_table=table, hash_slots=slots)
    mat, lens = keys_to_matrix([k for k, _ in items])
    vals = np.array([v for _, v in items], dtype=np.uint64)
    return eng.apply(mat, lens, vals)


def lookup_values(layout, keys, table=None):
    mat, lens = batch_of(keys)
    return lookup_batch(layout, mat, lens, root_table=table).values


class TestSimpleInserts:
    def test_insert_into_empty_slot(self):
        t = make_tree([(b"\x01\x01", 1), (b"\x02\x02", 2)])
        lay = CuartLayout(t, spare=1.0)
        res = apply_inserts(lay, [(b"\x03\x03", 3)])
        assert res.n_inserted == 1 and res.n_deferred == 0
        assert lookup_values(lay, [b"\x03\x03"]).tolist() == [3]

    def test_existing_key_becomes_update(self):
        t = make_tree([(b"\x01\x01", 1), (b"\x02\x02", 2)])
        lay = CuartLayout(t, spare=1.0)
        res = apply_inserts(lay, [(b"\x01\x01", 99)])
        assert res.n_updated == 1 and res.n_inserted == 0
        assert lookup_values(lay, [b"\x01\x01"]).tolist() == [99]

    def test_no_spare_capacity_defers(self):
        t = make_tree([(b"\x01\x01", 1), (b"\x02\x02", 2)])
        lay = CuartLayout(t, spare=0.0)
        res = apply_inserts(lay, [(b"\x03\x03", 3)])
        assert res.n_deferred == 1 and res.n_inserted == 0
        # the layout is untouched
        assert int(lookup_values(lay, [b"\x03\x03"])[0]) == NIL_VALUE

    def test_reuses_freed_leaf_slots(self):
        from repro.cuart.delete import delete_batch

        t = make_tree([(bytes([b, 9]), b) for b in range(6)])
        lay = CuartLayout(t, spare=0.0)  # no spare: only the free list
        mat, lens = batch_of([bytes([2, 9])])
        delete_batch(lay, mat, lens, hash_slots=256)
        assert lay.free_leaves[LINK_LEAF8]
        res = apply_inserts(lay, [(bytes([200, 9]), 77)])
        assert res.n_inserted == 1
        assert lookup_values(lay, [bytes([200, 9])]).tolist() == [77]
        assert not lay.free_leaves[LINK_LEAF8]  # slot consumed

    def test_prefix_split_on_device(self):
        t = make_tree([(b"commonAA", 1), (b"commonBB", 2)])
        lay = CuartLayout(t, spare=1.0)
        # diverges inside the compressed "common" prefix (in-window)
        res = apply_inserts(lay, [(b"comXotAA", 3)])
        assert res.n_inserted == 1
        got = lookup_values(lay, [b"commonAA", b"commonBB", b"comXotAA"])
        assert got.tolist() == [1, 2, 3]

    def test_prefix_split_beyond_window_defers(self):
        p = b"q" * 20  # compressed prefix longer than the 15B window
        t = make_tree([(p + b"AA", 1), (p + b"BB", 2)])
        lay = CuartLayout(t, spare=1.0)
        res = apply_inserts(lay, [(b"q" * 17 + b"XCC", 3)])
        # divergence at byte 17 is invisible on-device: host work
        assert res.n_deferred == 1

    def test_leaf_split_on_device(self):
        t = make_tree([(b"k1234567", 1)])
        lay = CuartLayout(t, spare=1.0)
        res = apply_inserts(lay, [(b"k1234568", 2)])
        assert res.n_inserted == 1
        got = lookup_values(lay, [b"k1234567", b"k1234568"])
        assert got.tolist() == [1, 2]

    def test_leaf_split_root_repointed(self):
        t = make_tree([(b"k1234567", 1)])
        lay = CuartLayout(t, spare=1.0)
        old_root = lay.root_link
        apply_inserts(lay, [(b"k1234568", 2)])
        assert lay.root_link != old_root

    def test_leaf_split_prefix_of_existing_defers(self):
        t = make_tree([(b"abcdef", 1), (b"zzzzzz", 2)])
        lay = CuartLayout(t, spare=1.0)
        res = apply_inserts(lay, [(b"abc", 3)])
        # proper prefix of an existing key: rejected to host (which will
        # also reject it, with KeyPrefixError)
        assert res.n_deferred == 1

    def test_empty_tree_root_install(self):
        from repro.art.tree import AdaptiveRadixTree

        lay = CuartLayout(AdaptiveRadixTree(), spare=1.0)
        # spare floors give the empty layout allocatable rows
        res = apply_inserts(lay, [(b"first", 1), (b"first", 2)])
        assert res.n_inserted == 1
        assert lookup_values(lay, [b"first"]).tolist() == [2]  # last wins

    def test_deep_split_chain(self):
        # split, then insert under the new branch, then split again
        t = make_tree([(b"root-A-11", 1), (b"root-B-22", 2)])
        lay = CuartLayout(t, spare=2.0)
        r1 = apply_inserts(lay, [(b"root-A-99", 3)])
        assert r1.n_inserted == 1
        r2 = apply_inserts(lay, [(b"root-A-9x", 4)])
        assert r2.n_inserted == 1
        got = lookup_values(
            lay, [b"root-A-11", b"root-B-22", b"root-A-99", b"root-A-9x"]
        )
        assert got.tolist() == [1, 2, 3, 4]

    def test_long_key_defers(self):
        t = make_tree([(b"\x01\x01", 1), (b"\x02\x02", 2)])
        lay = CuartLayout(t, spare=1.0)
        res = apply_inserts(lay, [(b"\x03" + b"x" * 40, 3)])
        assert res.n_deferred == 1

    def test_nil_value_rejected(self):
        t = make_tree([(b"\x01\x01", 1), (b"\x02\x02", 2)])
        lay = CuartLayout(t, spare=1.0)
        with pytest.raises(SimulationError):
            apply_inserts(lay, [(b"\x03\x03", NIL_VALUE)])


class TestGrowth:
    def test_full_n4_grows_to_n16(self):
        t = make_tree([(bytes([b, 1]), b) for b in range(4)])
        lay = CuartLayout(t, spare=1.0)
        assert lay.node_count(LINK_N4) >= 1
        res = apply_inserts(lay, [(bytes([100, 1]), 100)])
        assert res.n_inserted == 1
        assert res.grown_nodes == 1
        # everything still findable (old children + the new one)
        keys = [bytes([b, 1]) for b in range(4)] + [bytes([100, 1])]
        assert lookup_values(lay, keys).tolist() == [0, 1, 2, 3, 100]
        # the old N4 row was recycled
        assert lay.free_nodes[LINK_N4]

    def test_growth_repoints_root_link(self):
        t = make_tree([(bytes([b, 1]), b) for b in range(4)])
        lay = CuartLayout(t, spare=1.0)
        old_root = lay.root_link
        apply_inserts(lay, [(bytes([100, 1]), 100)])
        assert lay.root_link != old_root

    def test_growth_chain_n16_to_n48(self):
        t = make_tree([(bytes([b, 1]), b) for b in range(16)])
        lay = CuartLayout(t, spare=1.0)
        res = apply_inserts(lay, [(bytes([100, 1]), 100)])
        assert res.grown_nodes == 1
        keys = [bytes([b, 1]) for b in range(16)] + [bytes([100, 1])]
        assert lookup_values(lay, keys).tolist() == list(range(16)) + [100]

    def test_growth_n48_to_n256(self):
        t = make_tree([(bytes([b, 1]), b) for b in range(48)])
        lay = CuartLayout(t, spare=1.0)
        res = apply_inserts(lay, [(bytes([100, 1]), 100)])
        assert res.grown_nodes == 1
        keys = [bytes([b, 1]) for b in range(48)] + [bytes([100, 1])]
        assert lookup_values(lay, keys).tolist() == list(range(48)) + [100]

    def test_growth_patches_root_table(self):
        # deep node reached via the table must stay reachable post-growth
        keys = [bytes([7, 7, b, 1]) for b in range(4)]
        t = make_tree((k, i) for i, k in enumerate(keys))
        lay = CuartLayout(t, spare=1.0)
        table = RootTable(lay, k=2)
        eng = InsertEngine(lay, root_table=table, hash_slots=256)
        mat, lens = keys_to_matrix([bytes([7, 7, 200, 1])])
        res = eng.apply(mat, lens, np.array([50], dtype=np.uint64))
        assert res.n_inserted == 1
        got = lookup_values(lay, keys + [bytes([7, 7, 200, 1])], table=table)
        assert got.tolist() == [0, 1, 2, 3, 50]


class TestBatchSemantics:
    def test_duplicate_new_key_single_winner(self):
        t = make_tree([(b"\x01\x01", 1), (b"\x02\x02", 2)])
        lay = CuartLayout(t, spare=1.0)
        res = apply_inserts(lay, [(b"\x05\x05", 10), (b"\x05\x05", 20)])
        assert res.n_inserted == 1
        assert bool(res.inserted[1])  # highest thread id wins
        assert res.n_deferred == 1  # the loser retries
        assert lookup_values(lay, [b"\x05\x05"]).tolist() == [20]

    def test_second_round_converges(self):
        t = make_tree([(b"\x01\x01", 1), (b"\x02\x02", 2)])
        lay = CuartLayout(t, spare=1.0)
        eng = InsertEngine(lay, hash_slots=256)
        mat, lens = keys_to_matrix([b"\x05\x05", b"\x05\x05"])
        vals = np.array([10, 20], dtype=np.uint64)
        eng.apply(mat, lens, vals)
        res2 = eng.apply(mat, lens, vals)
        assert res2.n_inserted == 0
        assert res2.n_updated == 1  # winner updates; value stays 20
        assert lookup_values(lay, [b"\x05\x05"]).tolist() == [20]

    def test_mass_insert_then_lookup(self):
        base = random_keys(1500, 8, seed=21)
        tree = build_tree(base)
        lay = CuartLayout(tree, spare=0.6)
        extra = [k for k in random_keys(600, 8, seed=22) if tree.search(k) is None]
        res = apply_inserts(
            lay, [(k, 5000 + i) for i, k in enumerate(extra)], slots=1 << 11
        )
        assert res.n_inserted + res.n_deferred == len(extra)
        got = lookup_values(lay, extra)
        for i, k in enumerate(extra):
            if res.inserted[i]:
                assert int(got[i]) == 5000 + i
        # pre-existing keys untouched
        base_vals = lookup_values(lay, base)
        assert base_vals.tolist() == list(range(len(base)))

    def test_range_query_sees_inserted_keys(self):
        from repro.cuart.range_query import range_query

        base = [bytes([b, 0]) for b in range(0, 40, 2)]
        tree = build_tree(base)
        lay = CuartLayout(tree, spare=1.0)
        apply_inserts(lay, [(bytes([5, 0]), 500)])
        res = range_query(lay, bytes([0, 0]), bytes([10, 0]))
        assert bytes([5, 0]) in res.keys
        assert sorted(res.keys) == res.keys


class TestEngineInsert:
    def test_engine_insert_device_path(self):
        from repro.host.engine import CuartEngine

        keys = random_keys(800, 8, seed=31)
        eng = CuartEngine(batch_size=512, spare=0.5, root_table_depth=2)
        eng.populate((k, i) for i, k in enumerate(keys))
        eng.map_to_device()
        extra = [k for k in random_keys(200, 8, seed=32)
                 if k not in set(keys)]
        out = eng.insert([(k, 9000 + i) for i, k in enumerate(extra)])
        s = out.summary
        assert s["device_inserted"] + s["deferred"] == len(extra)
        got = eng.lookup(extra)
        assert got == [9000 + i for i in range(len(extra))]

    def test_engine_insert_remap_fallback(self):
        from repro.host.engine import CuartEngine

        eng = CuartEngine(batch_size=512, spare=0.0)
        eng.populate([(b"commonAA", 1), (b"commonBB", 2)])
        eng.map_to_device()
        out = eng.insert([(b"comXotCC", 3)])  # prefix split: host work
        assert out.summary["remapped"]
        assert eng.lookup([b"comXotCC", b"commonAA"]) == [3, 1]

    def test_engine_mirrors_keep_remap_consistent(self):
        from repro.host.engine import CuartEngine

        keys = random_keys(300, 8, seed=33)
        eng = CuartEngine(batch_size=512, spare=0.5)
        eng.populate((k, i) for i, k in enumerate(keys))
        eng.map_to_device()
        eng.update([(keys[0], 777)])
        eng.delete([keys[1]])
        eng.insert([(b"\xfe" * 8, 888)])
        # force a full re-map: nothing may be resurrected or lost
        eng.map_to_device()
        assert eng.lookup([keys[0], keys[1], b"\xfe" * 8]) == [777, None, 888]


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(st.binary(min_size=3, max_size=3), st.integers(0, 2**30),
                    min_size=4, max_size=60),
    st.dictionaries(st.binary(min_size=3, max_size=3), st.integers(0, 2**30),
                    min_size=1, max_size=40),
)
def test_insert_matches_model(base, extra):
    tree = make_tree(base.items())
    lay = CuartLayout(tree, spare=1.0)
    items = list(extra.items())
    res = apply_inserts(lay, items, slots=1 << 9)
    got = lookup_values(lay, [k for k, _ in items])
    for i, (k, v) in enumerate(items):
        if res.inserted[i] or res.updated[i]:
            assert int(got[i]) == v
    # base keys that were not re-inserted keep their values
    base_keys = [k for k in base if k not in extra]
    if base_keys:
        vals = lookup_values(lay, base_keys)
        assert [int(x) for x in vals] == [base[k] for k in base_keys]
