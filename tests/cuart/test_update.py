"""Unit + property tests for the two-stage update engine (section 3.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import NIL_VALUE
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import lookup_batch
from repro.cuart.root_table import RootTable
from repro.cuart.update import UpdateEngine
from repro.errors import SimulationError
from repro.util.keys import keys_to_matrix

from tests.conftest import batch_of, make_tree


def fresh_layout(medium_tree):
    return CuartLayout(medium_tree)


def read_values(layout, keys):
    mat, lens = batch_of(keys)
    return lookup_batch(layout, mat, lens).values


class TestUpdates:
    def test_simple_update(self, medium_tree, medium_keys):
        lay = fresh_layout(medium_tree)
        eng = UpdateEngine(lay, hash_slots=1 << 10)
        mat, lens = batch_of(medium_keys[:4])
        res = eng.apply(mat, lens, np.array([100, 101, 102, 103], dtype=np.uint64))
        assert res.found.all()
        assert res.winners.all()
        assert res.writes == 4
        assert read_values(lay, medium_keys[:4]).tolist() == [100, 101, 102, 103]

    def test_last_writer_wins(self, medium_tree, medium_keys):
        lay = fresh_layout(medium_tree)
        eng = UpdateEngine(lay, hash_slots=1 << 10)
        k = medium_keys[0]
        mat, lens = batch_of([k, k, k, k])
        res = eng.apply(mat, lens, np.array([10, 20, 30, 40], dtype=np.uint64))
        assert res.winners.tolist() == [False, False, False, True]
        assert res.conflicts_eliminated == 3
        assert res.writes == 1
        assert int(read_values(lay, [k])[0]) == 40

    def test_update_missing_key_skipped(self, medium_tree):
        lay = fresh_layout(medium_tree)
        eng = UpdateEngine(lay, hash_slots=1 << 10)
        mat, lens = batch_of([b"\xee" * 8])
        res = eng.apply(mat, lens, np.array([1], dtype=np.uint64))
        assert not res.found.any()
        assert res.writes == 0

    def test_nil_value_rejected_without_delete_flag(self, medium_tree, medium_keys):
        lay = fresh_layout(medium_tree)
        eng = UpdateEngine(lay, hash_slots=1 << 10)
        mat, lens = batch_of(medium_keys[:1])
        with pytest.raises(SimulationError):
            eng.apply(mat, lens, np.array([NIL_VALUE], dtype=np.uint64))

    def test_wrong_value_shape_rejected(self, medium_tree, medium_keys):
        lay = fresh_layout(medium_tree)
        eng = UpdateEngine(lay, hash_slots=1 << 10)
        mat, lens = batch_of(medium_keys[:2])
        with pytest.raises(SimulationError):
            eng.apply(mat, lens, np.array([1], dtype=np.uint64))

    def test_delete_via_nil_signal(self, medium_tree, medium_keys):
        lay = fresh_layout(medium_tree)
        eng = UpdateEngine(lay, hash_slots=1 << 10)
        mat, lens = batch_of(medium_keys[:3])
        deletes = np.array([False, True, False])
        res = eng.apply(
            mat, lens, np.array([7, 0, 9], dtype=np.uint64), deletes=deletes
        )
        assert res.writes == 3
        vals = read_values(lay, medium_keys[:3])
        assert int(vals[0]) == 7
        assert int(vals[1]) == NIL_VALUE  # nil pointer: reads as missing
        assert int(vals[2]) == 9

    def test_update_with_root_table(self, medium_tree, medium_keys):
        lay = fresh_layout(medium_tree)
        table = RootTable(lay, k=2)
        eng = UpdateEngine(lay, root_table=table, hash_slots=1 << 10)
        mat, lens = batch_of(medium_keys[:8])
        res = eng.apply(mat, lens, np.arange(300, 308).astype(np.uint64))
        assert res.found.all()
        assert read_values(lay, medium_keys[:8]).tolist() == list(range(300, 308))

    def test_probe_stats_reported(self, medium_tree, medium_keys):
        lay = fresh_layout(medium_tree)
        eng = UpdateEngine(lay, hash_slots=1 << 10)
        mat, lens = batch_of(medium_keys[:100])
        res = eng.apply(mat, lens, np.arange(100).astype(np.uint64))
        assert res.total_probes >= 100
        assert res.max_probe >= 1
        assert 0 < res.load_factor <= 100 / 1024

    def test_device_mutations_counted(self, medium_tree, medium_keys):
        lay = fresh_layout(medium_tree)
        eng = UpdateEngine(lay, hash_slots=1 << 10)
        mat, lens = batch_of(medium_keys[:5])
        eng.apply(mat, lens, np.arange(5).astype(np.uint64))
        assert lay.device_mutations == 5

    def test_log_contains_atomics_and_stores(self, medium_tree, medium_keys):
        lay = fresh_layout(medium_tree)
        eng = UpdateEngine(lay, hash_slots=1 << 10)
        mat, lens = batch_of(medium_keys[:16])
        res = eng.apply(mat, lens, np.arange(16).astype(np.uint64))
        assert res.log.atomic_ops >= 32
        assert res.log.total_transactions > 16


# ---------------------------------------------------------------------------
# property: batch update == sequential dict update in thread order
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=3, max_size=3), st.integers(0, 2**30), min_size=1,
        max_size=80,
    ),
    st.data(),
)
def test_update_batch_equals_sequential_model(pairs, data):
    keys = sorted(pairs)
    tree = make_tree(pairs.items())
    lay = CuartLayout(tree)
    eng = UpdateEngine(lay, hash_slots=1 << 8)
    batch = data.draw(
        st.lists(
            st.tuples(st.sampled_from(keys), st.integers(0, 2**30)),
            min_size=1,
            max_size=60,
        )
    )
    mat, lens = keys_to_matrix([k for k, _ in batch])
    values = np.array([v for _, v in batch], dtype=np.uint64)
    eng.apply(mat, lens, values)
    # sequential model: apply in thread (list) order
    model = dict(pairs)
    for k, v in batch:
        model[k] = v
    got = read_values(lay, keys)
    assert [int(v) for v in got] == [model[k] for k in keys]
