"""Unit + property tests for the batched CuART lookup kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import NIL_VALUE
from repro.cuart.layout import CuartLayout, LongKeyStrategy
from repro.cuart.lookup import lookup_batch
from repro.cuart.root_table import RootTable
from repro.util.keys import keys_to_matrix

from tests.conftest import batch_of, make_tree


def lookup_one(layout, key, **kw):
    mat, lens = keys_to_matrix([key])
    res = lookup_batch(layout, mat, lens, **kw)
    v = int(res.values[0])
    return None if v == NIL_VALUE else v


class TestExactLookups:
    def test_all_present_keys_hit(self, medium_tree, medium_layout, medium_keys):
        mat, lens = batch_of(medium_keys)
        res = lookup_batch(medium_layout, mat, lens)
        assert res.hits.all()
        assert res.values.tolist() == list(range(len(medium_keys)))

    def test_misses_return_nil(self, medium_layout):
        missing = [bytes([0xEE] * 8), bytes([1] * 8)]
        mat, lens = batch_of(missing)
        res = lookup_batch(medium_layout, mat, lens)
        assert (~res.hits).all()

    def test_mixed_hits_and_misses(self, medium_layout, medium_keys):
        queries = [medium_keys[0], b"\xde\xad\xbe\xef\x00\x00\x00\x01", medium_keys[5]]
        mat, lens = batch_of(queries)
        res = lookup_batch(medium_layout, mat, lens)
        assert res.hits.tolist() == [True, False, True]
        assert int(res.values[0]) == 0 and int(res.values[2]) == 5

    def test_locations_are_leaf_links(self, medium_layout, medium_keys):
        mat, lens = batch_of(medium_keys[:10])
        res = lookup_batch(medium_layout, mat, lens)
        assert (res.locations != 0).all()
        # looking the location's leaf value must equal the result
        from repro.util.packing import link_indices, link_types

        codes = link_types(res.locations)
        idx = link_indices(res.locations)
        for j in range(10):
            buf = medium_layout.leaves[int(codes[j])]
            assert int(buf.values[idx[j]]) == int(res.values[j])

    def test_parent_links_point_at_real_parents(self, medium_layout, medium_keys):
        mat, lens = batch_of(medium_keys[:50])
        res = lookup_batch(medium_layout, mat, lens)
        from repro.util.packing import link_indices, link_types
        from repro.constants import NODE_TYPE_CODES

        pcodes = link_types(res.parent_links)
        pidx = link_indices(res.parent_links)
        for j in range(50):
            code = int(pcodes[j])
            assert code in NODE_TYPE_CODES
            buf = medium_layout.nodes[code]
            byte = int(res.parent_bytes[j])
            # the parent's child slot for that byte is the found leaf
            if code in (1, 2):
                slots = np.nonzero(buf.keys[pidx[j]] == byte)[0]
                child = int(buf.children[pidx[j], slots[0]])
            elif code == 3:
                slot = int(buf.child_index[pidx[j], byte])
                child = int(buf.children[pidx[j], slot])
            else:
                child = int(buf.children[pidx[j], byte])
            assert child == int(res.locations[j])

    def test_shorter_query_than_tree_path_misses(self):
        t = make_tree([(b"abcdef", 1), (b"abcxyz", 2)])
        lay = CuartLayout(t)
        assert lookup_one(lay, b"abc") is None
        assert lookup_one(lay, b"ab") is None

    def test_query_longer_than_keys_misses(self):
        t = make_tree([(b"abcd", 1)])
        lay = CuartLayout(t)
        assert lookup_one(lay, b"abcdX") is None

    def test_mismatch_beyond_stored_prefix_window(self):
        # 20-byte compressed prefix exceeds the 15-byte stored window;
        # optimistic traversal must still reject via the leaf compare
        p = b"q" * 20
        t = make_tree([(p + b"aT", 1), (p + b"bT", 2)])
        lay = CuartLayout(t)
        wrong = b"q" * 16 + b"XXXX" + b"aT"  # diverges at byte 16 (unstored)
        assert lookup_one(lay, wrong) is None
        assert lookup_one(lay, p + b"aT") == 1

    def test_empty_tree_lookup(self):
        from repro.art.tree import AdaptiveRadixTree

        lay = CuartLayout(AdaptiveRadixTree())
        mat, lens = batch_of([b"anything"])
        res = lookup_batch(lay, mat, lens)
        assert not res.hits.any()

    def test_all_node_types_on_path(self):
        # craft a tree with N4, N16, N48 and N256 on the same root path
        pairs = []
        for b0 in range(100):  # root N256
            pairs.append((bytes([b0, 0, 0, 9]), b0))
        for b1 in range(20):  # N48 under 0
            pairs.append((bytes([0, b1, 0, 8]), 200 + b1))
        for b2 in range(8):  # N16 under (0,0)
            pairs.append((bytes([0, 0, b2, 7]), 400 + b2))
        t = make_tree(pairs)
        lay = CuartLayout(t)
        mat, lens = batch_of([k for k, _ in pairs])
        res = lookup_batch(lay, mat, lens)
        assert res.hits.all()
        assert res.values.tolist() == [v for _, v in pairs]


class TestWithRootTable:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_results_identical_with_table(self, medium_tree, medium_keys, k):
        lay = CuartLayout(medium_tree)
        table = RootTable(lay, k=k)
        queries = medium_keys[:300] + [bytes([7] * 8), bytes([0xAB] * 8)]
        mat, lens = batch_of(queries)
        plain = lookup_batch(lay, mat, lens)
        dispatched = lookup_batch(lay, mat, lens, root_table=table)
        assert (plain.values == dispatched.values).all()

    def test_table_skips_rounds(self, medium_tree, medium_keys):
        lay = CuartLayout(medium_tree)
        table = RootTable(lay, k=3)
        mat, lens = batch_of(medium_keys[:256])
        plain = lookup_batch(lay, mat, lens)
        fast = lookup_batch(lay, mat, lens, root_table=table)
        # dispatch replaces the upper levels: fewer traversal transactions
        # on nodes (the table read itself is one 8-byte access)
        assert fast.log.total_bytes < plain.log.total_bytes

    @pytest.mark.slow
    def test_short_keys_fall_back_to_root(self, medium_tree):
        lay = CuartLayout(medium_tree)
        table = RootTable(lay, k=3)
        t2 = make_tree([(b"ab", 5), (b"cd", 6)])
        lay2 = CuartLayout(t2)
        table2 = RootTable(lay2, k=3)
        mat, lens = batch_of([b"ab", b"cd", b"zz"])
        res = lookup_batch(lay2, mat, lens, root_table=table2)
        assert res.values.tolist()[:2] == [5, 6]
        assert int(res.values[2]) == NIL_VALUE


class TestTransactionAccounting:
    def test_rounds_and_transactions_recorded(self, medium_layout, medium_keys):
        mat, lens = batch_of(medium_keys[:128])
        res = lookup_batch(medium_layout, mat, lens)
        log = res.log
        assert log.launched_threads == 128
        assert log.dependent_rounds >= 2
        assert log.total_transactions >= 128 * 2  # at least node+leaf each
        assert log.total_bytes > 0
        assert log.unaligned_transactions == 0  # CuART is aligned

    def test_distinct_bytes_monotone_levels(self, medium_layout, medium_keys):
        mat, lens = batch_of(medium_keys[:512])
        res = lookup_batch(medium_layout, mat, lens)
        per_round = [r.distinct_bytes for r in res.log.rounds]
        # the root round touches one node; the widest middle round fans
        # out across many distinct nodes
        assert per_round[0] <= max(per_round)
        assert all(d > 0 for d in per_round)

    def test_compute_cycles_charged(self, medium_layout, medium_keys):
        mat, lens = batch_of(medium_keys[:64])
        res = lookup_batch(medium_layout, mat, lens)
        assert res.log.compute_cycles > 0


class TestLongKeyLookups:
    LONG = b"Z" * 40

    def test_host_link_signal(self):
        t = make_tree([(self.LONG, 77), (b"short!", 1)])
        lay = CuartLayout(t, long_keys=LongKeyStrategy.HOST_LINK)
        mat, lens = batch_of([self.LONG, b"short!"])
        res = lookup_batch(lay, mat, lens)
        assert int(res.host_refs[0]) == 0  # resolve host_leaves[0] on CPU
        assert int(res.host_refs[1]) == -1
        assert int(res.values[1]) == 1
        key, val = lay.host_leaves[int(res.host_refs[0])]
        assert key == self.LONG and val == 77

    def test_dynamic_leaf_lookup(self):
        t = make_tree([(self.LONG, 123456), (self.LONG[:39] + b"!", 2), (b"sh", 3)])
        lay = CuartLayout(t, long_keys=LongKeyStrategy.DYNAMIC)
        mat, lens = batch_of([self.LONG, self.LONG[:39] + b"!", b"sh", b"Z" * 39])
        res = lookup_batch(lay, mat, lens)
        assert res.values.tolist()[:3] == [123456, 2, 3]
        assert int(res.values[3]) == NIL_VALUE

    def test_dynamic_leaf_charges_unaligned(self):
        t = make_tree([(self.LONG, 1), (self.LONG[:39] + b"!", 2)])
        lay = CuartLayout(t, long_keys=LongKeyStrategy.DYNAMIC)
        mat, lens = batch_of([self.LONG])
        res = lookup_batch(lay, mat, lens)
        assert res.log.unaligned_transactions > 0


# ---------------------------------------------------------------------------
# property-based: batched device lookups == host tree search
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=3, max_size=3), st.integers(0, 2**40), min_size=1,
        max_size=150,
    ),
    st.lists(st.binary(min_size=1, max_size=5), min_size=1, max_size=60),
)
def test_lookup_matches_host_tree(pairs, probes):
    t = make_tree(pairs.items())
    lay = CuartLayout(t)
    queries = list(pairs.keys()) + probes
    mat, lens = keys_to_matrix(queries)
    res = lookup_batch(lay, mat, lens)
    for q, v in zip(queries, res.values):
        expect = t.search(q)
        got = None if int(v) == NIL_VALUE else int(v)
        assert got == expect, q


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=4, max_size=4), st.integers(0, 2**40), min_size=1,
        max_size=200,
    ),
    st.integers(1, 3),
)
def test_lookup_matches_with_root_table(pairs, k):
    t = make_tree(pairs.items())
    lay = CuartLayout(t)
    table = RootTable(lay, k=k)
    queries = list(pairs.keys())
    mat, lens = keys_to_matrix(queries)
    res = lookup_batch(lay, mat, lens, root_table=table)
    assert res.values.tolist() == [pairs[q] for q in queries]
