"""Unit tests for the CuART struct-of-arrays mapping."""

import numpy as np
import pytest

from repro.art.tree import AdaptiveRadixTree
from repro.constants import (
    CUART_MAX_PREFIX,
    LEAF_TYPE_CODES,
    LINK_DYNLEAF,
    LINK_EMPTY,
    LINK_HOST,
    LINK_LEAF8,
    LINK_LEAF16,
    LINK_LEAF32,
    LINK_N4,
    LINK_N16,
    LINK_N48,
    LINK_N256,
)
from repro.cuart.layout import CuartLayout, LongKeyStrategy
from repro.errors import KeyTooLongError, StaleLayoutError
from repro.util.keys import encode_int
from repro.util.packing import link_type, unpack_link

from tests.conftest import make_tree


class TestMappingBasics:
    def test_empty_tree(self):
        lay = CuartLayout(AdaptiveRadixTree())
        assert link_type(lay.root_link) == LINK_EMPTY

    def test_single_leaf_root(self):
        lay = CuartLayout(make_tree([(b"abcd", 7)]))
        code, idx = unpack_link(lay.root_link)
        assert code == LINK_LEAF8 and idx == 0
        buf = lay.leaves[LINK_LEAF8]
        assert buf.values[0] == 7
        assert buf.key_lens[0] == 4
        assert bytes(buf.keys[0, :4]) == b"abcd"

    def test_node_counts_match_tree(self):
        t = make_tree([(bytes([0, b]), b) for b in range(20)])  # Node48 root
        lay = CuartLayout(t)
        assert lay.node_count(LINK_N48) == 1
        assert lay.node_count(LINK_N4) == 0
        assert lay.node_count(LINK_LEAF8) == 20

    @pytest.mark.parametrize(
        "fanout,code", [(3, LINK_N4), (10, LINK_N16), (30, LINK_N48), (100, LINK_N256)]
    )
    def test_root_node_type(self, fanout, code):
        t = make_tree([(bytes([b, 1]), b) for b in range(fanout)])
        lay = CuartLayout(t)
        assert link_type(lay.root_link) == code

    def test_leaf_size_classes(self):
        t = make_tree([(b"a" * 8, 1), (b"b" * 16, 2), (b"c" * 32, 3)])
        lay = CuartLayout(t)
        assert lay.node_count(LINK_LEAF8) == 1
        assert lay.node_count(LINK_LEAF16) == 1
        assert lay.node_count(LINK_LEAF32) == 1

    def test_leaf_buffers_lexicographically_ordered(self):
        rng = np.random.default_rng(3)
        keys = sorted(
            {bytes(rng.integers(0, 256, size=6).astype(np.uint8)) for _ in range(300)}
        )
        lay = CuartLayout(make_tree((k, i) for i, k in enumerate(keys)))
        buf = lay.leaves[LINK_LEAF8]
        stored = [buf.keys[i].tobytes() for i in range(buf.keys.shape[0])]
        assert stored == sorted(stored)

    def test_prefix_window_truncation(self):
        long_prefix = b"x" * 40
        t = make_tree([(long_prefix + b"a", 1), (long_prefix + b"b", 2)])
        with pytest.raises(KeyTooLongError):
            CuartLayout(t)  # 41-byte keys exceed leaf32
        t2 = make_tree([(b"p" * 20 + b"a", 1), (b"p" * 20 + b"b", 2)])
        lay = CuartLayout(t2)
        buf = lay.nodes[LINK_N4]
        assert buf.prefix_len[0] == 20  # full skipped length kept
        assert bytes(buf.prefix[0]) == b"p" * CUART_MAX_PREFIX

    def test_device_bytes_positive_and_aligned(self, medium_layout):
        assert medium_layout.device_bytes() > 0
        assert medium_layout.device_bytes() % 16 == 0

    def test_node_links_recorded_for_every_node(self, medium_tree):
        lay = CuartLayout(medium_tree)
        # every (inner or leaf) host node has a device link
        count = 0
        stack = [medium_tree.root]
        while stack:
            node = stack.pop()
            assert id(node) in lay.node_links
            count += 1
            if hasattr(node, "children_items"):
                stack.extend(c for _, c in node.children_items())
        assert count == len(lay.node_links)

    def test_max_levels_tracked(self, medium_layout):
        assert medium_layout.max_levels >= 2


class TestStaleness:
    def test_structural_change_invalidates(self, medium_tree):
        lay = CuartLayout(medium_tree)
        medium_tree.insert(encode_int(2**62 + 12345), 1)
        with pytest.raises(StaleLayoutError):
            lay.check_fresh()
        medium_tree.delete(encode_int(2**62 + 12345))  # restore for others

    def test_fresh_layout_passes(self, medium_layout):
        medium_layout.check_fresh()


class TestLongKeyStrategies:
    LONG = b"L" * 48

    def test_error_strategy_raises(self):
        t = make_tree([(self.LONG, 1)])
        with pytest.raises(KeyTooLongError):
            CuartLayout(t, long_keys=LongKeyStrategy.ERROR)

    def test_host_link_strategy(self):
        t = make_tree([(self.LONG, 9), (b"short", 1)])
        lay = CuartLayout(t, long_keys=LongKeyStrategy.HOST_LINK)
        assert lay.host_leaves == [(self.LONG, 9)]
        # a HOST link exists somewhere in the node buffers
        found = any(
            link_type(int(link)) == LINK_HOST
            for link in lay.nodes[LINK_N4].children.ravel()
        )
        assert found

    def test_dynamic_strategy_heap(self):
        t = make_tree([(self.LONG, 1234), (b"short", 1)])
        lay = CuartLayout(t, long_keys=LongKeyStrategy.DYNAMIC)
        assert lay.dyn.heap.size >= 10 + len(self.LONG)
        assert len(lay.dyn.offsets) == 1
        off = lay.dyn.offsets[0]
        stored_len = int(lay.dyn.heap[off]) | (int(lay.dyn.heap[off + 1]) << 8)
        assert stored_len == len(self.LONG)

    def test_single_leaf_ablation(self):
        t = make_tree([(b"ab", 1), (b"cd", 2)])
        lay = CuartLayout(t, single_leaf_size=32)
        assert lay.node_count(LINK_LEAF32) == 2
        assert lay.node_count(LINK_LEAF8) == 0

    def test_single_leaf_rejects_longer_keys(self):
        t = make_tree([(b"x" * 12, 1)])
        with pytest.raises(KeyTooLongError):
            CuartLayout(t, single_leaf_size=8)

    def test_single_leaf_invalid_size(self):
        with pytest.raises(KeyTooLongError):
            CuartLayout(AdaptiveRadixTree(), single_leaf_size=24)


class TestMemoryAccounting:
    def test_free_leaves_initially_empty(self, medium_layout):
        assert all(len(v) == 0 for v in medium_layout.free_leaves.values())

    def test_leaf_value_location_is_packed_link(self, medium_layout):
        loc = medium_layout.leaf_value_location(LINK_LEAF8, 5)
        assert unpack_link(loc) == (LINK_LEAF8, 5)


class TestPrefixWindow:
    """The tunable stored-prefix window (paper: GRT's freed type byte
    funds the 15-byte default)."""

    def test_default_matches_constant(self, medium_tree):
        lay = CuartLayout(medium_tree)
        assert lay.prefix_window == CUART_MAX_PREFIX
        from repro.constants import CUART_NODE_BYTES

        assert lay.node_record_bytes == CUART_NODE_BYTES

    @pytest.mark.parametrize("window", [4, 8, 31])
    def test_lookups_correct_at_any_window(self, window):
        from repro.cuart.lookup import lookup_batch
        from repro.util.keys import keys_to_matrix

        p = b"s" * 12  # forces optimistic skips for small windows
        keys = [p + bytes([b, b ^ 0x5A]) for b in range(60)]
        t = make_tree((k, i) for i, k in enumerate(keys))
        lay = CuartLayout(t, prefix_window=window)
        probes = keys + [p[:-1] + b"X" + bytes([1, 2])]
        mat, lens = keys_to_matrix(probes)
        res = lookup_batch(lay, mat, lens)
        assert res.values[:60].tolist() == list(range(60))
        assert not res.hits[60]

    def test_smaller_window_smaller_records(self, medium_tree):
        small = CuartLayout(medium_tree, prefix_window=4)
        big = CuartLayout(medium_tree, prefix_window=31)
        assert small.device_bytes() < big.device_bytes()
        assert small.node_record_bytes[LINK_N4] < big.node_record_bytes[LINK_N4]

    def test_records_stay_aligned(self, medium_tree):
        for window in (1, 7, 15, 31):
            lay = CuartLayout(medium_tree, prefix_window=window)
            assert all(v % 16 == 0 for v in lay.node_record_bytes.values())

    def test_invalid_window(self, medium_tree):
        with pytest.raises(KeyTooLongError):
            CuartLayout(medium_tree, prefix_window=0)
        with pytest.raises(KeyTooLongError):
            CuartLayout(medium_tree, prefix_window=256)

    def test_insert_splits_respect_window(self):
        from repro.cuart.insert import InsertEngine
        from repro.util.keys import keys_to_matrix
        import numpy as np

        mat, lens = keys_to_matrix([b"comXotCC"])
        values = np.array([3], dtype=np.uint64)

        # window 4: the node's 6-byte prefix has invisible tail bytes, so
        # the on-device prefix split must refuse and defer to the host
        t = make_tree([(b"commonAA", 1), (b"commonBB", 2)])
        lay4 = CuartLayout(t, spare=1.0, prefix_window=4)
        res4 = InsertEngine(lay4, hash_slots=256).apply(mat, lens, values)
        assert res4.n_deferred == 1 and res4.n_inserted == 0

        # window 15 (default): the whole prefix is visible -> split works
        t2 = make_tree([(b"commonAA", 1), (b"commonBB", 2)])
        lay15 = CuartLayout(t2, spare=1.0, prefix_window=15)
        res15 = InsertEngine(lay15, hash_slots=256).apply(mat, lens, values)
        assert res15.n_inserted == 1
