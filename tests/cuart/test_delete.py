"""Unit tests for device-side deletions (section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import LEAF_TYPE_CODES, NIL_VALUE
from repro.cuart.delete import delete_batch
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import lookup_batch
from repro.cuart.root_table import RootTable
from repro.util.keys import keys_to_matrix
from repro.util.packing import link_indices, link_types

from tests.conftest import batch_of, make_tree


def read_values(layout, keys, table=None):
    mat, lens = batch_of(keys)
    return lookup_batch(layout, mat, lens, root_table=table).values


class TestDeleteBatch:
    def test_delete_makes_key_unfindable(self, medium_tree, medium_keys):
        lay = CuartLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:4])
        res = delete_batch(lay, mat, lens, hash_slots=1 << 10)
        assert res.deleted.all()
        vals = read_values(lay, medium_keys[:6])
        assert [int(v) for v in vals[:4]] == [NIL_VALUE] * 4
        assert int(vals[4]) == 4  # untouched neighbours survive

    def test_duplicate_deletes_deduplicated(self, medium_tree, medium_keys):
        lay = CuartLayout(medium_tree)
        k = medium_keys[10]
        mat, lens = batch_of([k, k, k])
        res = delete_batch(lay, mat, lens, hash_slots=1 << 10)
        assert res.deleted.all()
        assert res.unlinked + res.cleared_only == 1  # one winner only

    def test_delete_missing_key(self, medium_tree):
        lay = CuartLayout(medium_tree)
        mat, lens = batch_of([b"\xef" * 8])
        res = delete_batch(lay, mat, lens, hash_slots=1 << 10)
        assert not res.deleted.any()
        assert res.unlinked == 0

    def test_leaf_contents_cleared(self, medium_tree, medium_keys):
        lay = CuartLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:1])
        loc = lookup_batch(lay, mat, lens).locations
        code = int(link_types(loc)[0])
        idx = int(link_indices(loc)[0])
        delete_batch(lay, mat, lens, hash_slots=1 << 10)
        buf = lay.leaves[code]
        assert int(buf.values[idx]) == NIL_VALUE
        assert int(buf.key_lens[idx]) == 0
        assert not buf.keys[idx].any()

    def test_free_list_populated(self, medium_tree, medium_keys):
        lay = CuartLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:5])
        res = delete_batch(lay, mat, lens, hash_slots=1 << 10)
        freed = sum(len(v) for v in lay.free_leaves.values())
        assert freed == res.unlinked

    def test_unlink_removes_parent_reference(self, medium_tree, medium_keys):
        lay = CuartLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:1])
        before = lookup_batch(lay, mat, lens)
        assert before.hits.all()
        res = delete_batch(lay, mat, lens, hash_slots=1 << 10)
        if res.unlinked:
            # the traversal must now dead-end before reaching any leaf
            after = lookup_batch(lay, mat, lens)
            assert (after.locations == 0).all()

    def test_structure_not_collapsed(self, medium_tree, medium_keys):
        """Section 3.3: nodes are NOT merged/shrunk by device deletes."""
        lay = CuartLayout(medium_tree)
        counts_before = {c: lay.node_count(c) for c in (1, 2, 3, 4)}
        mat, lens = batch_of(medium_keys[:50])
        delete_batch(lay, mat, lens, hash_slots=1 << 10)
        counts_after = {c: lay.node_count(c) for c in (1, 2, 3, 4)}
        assert counts_before == counts_after

    def test_delete_with_root_table(self, medium_tree, medium_keys):
        lay = CuartLayout(medium_tree)
        table = RootTable(lay, k=2)
        mat, lens = batch_of(medium_keys[:3])
        res = delete_batch(lay, mat, lens, root_table=table, hash_slots=1 << 10)
        assert res.deleted.all()
        vals = read_values(lay, medium_keys[:3], table=table)
        assert [int(v) for v in vals] == [NIL_VALUE] * 3

    def test_range_queries_skip_deleted(self, medium_tree, medium_keys):
        from repro.cuart.range_query import range_query

        lay = CuartLayout(medium_tree)
        ordered = sorted(medium_keys)
        victim = ordered[50]
        mat, lens = batch_of([victim])
        delete_batch(lay, mat, lens, hash_slots=1 << 10)
        res = range_query(lay, ordered[45], ordered[55])
        assert victim not in res.keys
        assert len(res) == 10  # 11 keys in range minus the victim


@settings(max_examples=25, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=3, max_size=3), st.integers(0, 2**30), min_size=2,
        max_size=100,
    ),
    st.data(),
)
def test_delete_batch_equals_set_model(pairs, data):
    keys = sorted(pairs)
    doomed = data.draw(
        st.lists(st.sampled_from(keys), min_size=1, max_size=len(keys))
    )
    tree = make_tree(pairs.items())
    lay = CuartLayout(tree)
    mat, lens = keys_to_matrix(doomed)
    res = delete_batch(lay, mat, lens, hash_slots=1 << 8)
    assert res.deleted.all()
    survivors = [k for k in keys if k not in set(doomed)]
    got = read_values(lay, keys)
    for k, v in zip(keys, got):
        if k in set(doomed):
            assert int(v) == NIL_VALUE
        else:
            assert int(v) == pairs[k]
