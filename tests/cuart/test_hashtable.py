"""Unit + property tests for the atomic-max hash table (section 3.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuart.hashtable import AtomicMaxHashTable
from repro.errors import HashTableFullError, SimulationError
from repro.gpusim.transactions import TransactionLog


def table(slots=256, log=None):
    return AtomicMaxHashTable(slots, log=log)


class TestBasics:
    def test_insert_and_lookup(self):
        t = table()
        t.insert_max(np.array([10, 20, 30], dtype=np.uint64),
                     np.array([1, 2, 3]))
        assert t.lookup(np.array([10, 20, 30], dtype=np.uint64)).tolist() == [1, 2, 3]

    def test_max_semantics(self):
        t = table()
        keys = np.array([42, 42, 42, 7], dtype=np.uint64)
        prios = np.array([5, 99, 23, 1])
        t.insert_max(keys, prios)
        assert t.lookup(np.array([42, 7], dtype=np.uint64)).tolist() == [99, 1]

    def test_missing_key_returns_minus_one(self):
        t = table()
        t.insert_max(np.array([1], dtype=np.uint64), np.array([0]))
        assert t.lookup(np.array([999], dtype=np.uint64)).tolist() == [-1]

    def test_successive_batches_accumulate_max(self):
        t = table()
        t.insert_max(np.array([5], dtype=np.uint64), np.array([10]))
        t.insert_max(np.array([5], dtype=np.uint64), np.array([3]))
        assert t.lookup(np.array([5], dtype=np.uint64)).tolist() == [10]

    def test_reset(self):
        t = table()
        t.insert_max(np.array([5], dtype=np.uint64), np.array([10]))
        t.reset()
        assert t.occupied == 0
        assert t.lookup(np.array([5], dtype=np.uint64)).tolist() == [-1]

    def test_empty_insert_noop(self):
        t = table()
        t.insert_max(np.array([], dtype=np.uint64), np.array([], dtype=np.int64))
        assert t.occupied == 0

    def test_zero_key_rejected(self):
        with pytest.raises(SimulationError):
            table().insert_max(np.array([0], dtype=np.uint64), np.array([1]))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SimulationError):
            table(slots=100)


class TestCollisions:
    def test_full_table_raises(self):
        t = table(slots=8)
        keys = np.arange(1, 10, dtype=np.uint64)  # 9 distinct > 8 slots
        with pytest.raises(HashTableFullError):
            t.insert_max(keys, np.arange(9))

    def test_exactly_full_is_fine(self):
        t = table(slots=8)
        keys = np.arange(1, 9, dtype=np.uint64)
        t.insert_max(keys, np.arange(8))
        assert t.occupied == 8
        assert t.load_factor == 1.0
        assert t.lookup(keys).tolist() == list(range(8))

    def test_probe_counts_grow_with_load(self):
        low = table(slots=1 << 12)
        high = table(slots=1 << 12)
        rng = np.random.default_rng(5)
        few = rng.choice(2**40, size=200, replace=False).astype(np.uint64) + 1
        many = rng.choice(2**40, size=3500, replace=False).astype(np.uint64) + 1
        low.insert_max(few, np.arange(few.size))
        high.insert_max(many, np.arange(many.size))
        assert high.total_probes / many.size > low.total_probes / few.size

    def test_transaction_log_records_probes_and_atomics(self):
        log = TransactionLog()
        t = table(slots=64, log=log)
        keys = np.arange(1, 33, dtype=np.uint64)
        t.insert_max(keys, np.arange(32))
        assert log.total_transactions >= 32
        assert log.atomic_ops >= 64  # one CAS probe + one max per thread
        t.lookup(keys)
        assert log.total_transactions >= 64


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 2**50), st.integers(0, 10**6)),
        min_size=1,
        max_size=120,
    )
)
def test_matches_dict_max_model(items):
    t = table(slots=256)
    keys = np.array([k for k, _ in items], dtype=np.uint64)
    prios = np.array([p for _, p in items], dtype=np.int64)
    t.insert_max(keys, prios)
    model = {}
    for k, p in items:
        model[k] = max(model.get(k, -1), p)
    uniq = np.array(sorted(model), dtype=np.uint64)
    assert t.lookup(uniq).tolist() == [model[int(k)] for k in uniq]


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 200), st.integers(0, 2**31))
def test_never_loses_keys_below_capacity(n, seed):
    rng = np.random.default_rng(seed)
    keys = rng.choice(2**40, size=n, replace=False).astype(np.uint64) + 1
    t = table(slots=256)
    t.insert_max(keys, np.arange(n))
    assert (t.lookup(keys) >= 0).all()
    assert t.occupied == n
