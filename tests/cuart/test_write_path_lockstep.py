"""Lockstep oracle tests for the vectorized write path.

The batched update / delete / insert-claim kernels take whole-array fast
paths (one fused linear-probe pass over the conflict table, winner
scatters, bulk leaf allocation).  These tests pin them against the
per-key scalar oracle: the same stream applied one single-row batch at a
time must leave byte-identical device buffers, including intra-batch
duplicate keys (last-writer-wins by thread index) and delete-then-insert
reuse of free-listed leaf slots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.art.tree import AdaptiveRadixTree
from repro.constants import LEAF_TYPE_CODES, NIL_VALUE, NODE_TYPE_CODES
from repro.cuart.delete import delete_batch
from repro.cuart.insert import InsertEngine
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import lookup_batch
from repro.cuart.update import UpdateEngine
from repro.util.keys import keys_to_matrix
from repro.util.packing import link_indices, link_types
from repro.workloads.synthetic import random_keys

SEEDS = [3, 17, 91]


def _build(keys, *, spare=0.5) -> CuartLayout:
    tree = AdaptiveRadixTree()
    for i, k in enumerate(keys):
        tree.insert(k, i + 1)
    return CuartLayout(tree, spare=spare)


def _assert_layouts_equal(a: CuartLayout, b: CuartLayout) -> None:
    """Byte-identical device state: every buffer, free list and cursor."""
    for code in LEAF_TYPE_CODES:
        for attr in ("keys", "key_lens", "values"):
            assert np.array_equal(
                getattr(a.leaves[code], attr), getattr(b.leaves[code], attr)
            ), f"leaf[{code}].{attr} diverged"
    for code in NODE_TYPE_CODES:
        for attr in ("keys", "children", "child_index", "counts",
                     "prefix", "prefix_len"):
            x = getattr(a.nodes[code], attr)
            y = getattr(b.nodes[code], attr)
            if x is not None:
                assert np.array_equal(x, y), f"node[{code}].{attr} diverged"
    assert a.free_leaves == b.free_leaves
    assert a._next_leaf == b._next_leaf
    assert a.root_link == b.root_link


def _scalar_updates(layout, stream):
    """Per-key oracle: one single-row update batch per item, in order."""
    engine = UpdateEngine(layout)
    found = []
    for k, v in stream:
        mat, lens = keys_to_matrix([k])
        res = engine.apply(mat, lens, np.array([v], dtype=np.uint64))
        found.append(bool(res.found[0]))
    return found


class TestUpdateLockstep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_update_matches_scalar_oracle(self, seed):
        rng = np.random.default_rng(seed)
        keys = random_keys(256, 12, seed=seed)
        pool = keys + random_keys(32, 12, seed=seed + 999)  # some misses
        batched, scalar = _build(keys), _build(keys)
        # duplicates are frequent: 300 draws from 288 candidates
        idx = rng.integers(0, len(pool), size=300)
        vals = rng.integers(1, 1 << 40, size=300).astype(np.uint64)
        stream = [(pool[i], int(v)) for i, v in zip(idx, vals)]

        mat, lens = keys_to_matrix([k for k, _ in stream])
        res = UpdateEngine(batched).apply(mat, lens, vals)
        found_oracle = _scalar_updates(scalar, stream)

        assert res.found.tolist() == found_oracle
        _assert_layouts_equal(batched, scalar)

    def test_intra_batch_duplicates_last_writer_wins(self):
        keys = random_keys(64, 12, seed=5)
        layout = _build(keys)
        k = keys[7]
        stream = [(k, 111), (keys[9], 5), (k, 222), (k, 333)]
        mat, lens = keys_to_matrix([q for q, _ in stream])
        vals = np.array([v for _, v in stream], dtype=np.uint64)
        res = UpdateEngine(layout).apply(mat, lens, vals)
        # the highest thread index is the sole winner for the hot key
        assert res.winners.tolist() == [False, True, False, True]
        assert res.conflicts_eliminated == 2
        got = lookup_batch(layout, *keys_to_matrix([k, keys[9]]))
        assert got.values.tolist() == [333, 5]


class TestDeleteLockstep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_delete_matches_scalar_oracle(self, seed):
        rng = np.random.default_rng(seed)
        keys = random_keys(300, 12, seed=seed)
        batched, scalar = _build(keys), _build(keys)
        picks = rng.permutation(len(keys))[:180]  # distinct targets
        del_keys = [keys[i] for i in picks] + random_keys(20, 12,
                                                          seed=seed + 7)
        mat, lens = keys_to_matrix(del_keys)
        res = delete_batch(batched, mat, lens)

        deleted_oracle = []
        for k in del_keys:
            m1, l1 = keys_to_matrix([k])
            r1 = delete_batch(scalar, m1, l1)
            deleted_oracle.append(bool(r1.deleted[0]))

        assert res.deleted.tolist() == deleted_oracle
        _assert_layouts_equal(batched, scalar)

    def test_duplicate_deletes_share_one_clear(self):
        keys = random_keys(64, 12, seed=8)
        batched, scalar = _build(keys), _build(keys)
        k = keys[3]
        res = delete_batch(batched, *keys_to_matrix([k, k, k]))
        # dedup losers still report success (their location is cleared)
        assert res.deleted.tolist() == [True, True, True]
        assert res.unlinked == 1
        delete_batch(scalar, *keys_to_matrix([k]))
        _assert_layouts_equal(batched, scalar)


def _claim_only_workload(seed):
    """Base and fresh key sets whose claims never interact.

    Every key gets a distinct first byte, so the root is an ``N256``
    (never grows) and each fresh key is a ``NO_CHILD`` claim at a
    distinct (node, byte) slot — the regime where the vectorized claim
    scatter promises byte-identical buffers against the scalar oracle.
    """
    rng = np.random.default_rng(seed)
    firsts = rng.permutation(256)
    base_first, fresh_first = firsts[:120], firsts[120:200]

    def mk(fbytes, salt):
        r = np.random.default_rng(seed + salt)
        return [
            bytes([int(b)])
            + r.integers(0, 256, size=11, dtype=np.uint8).tobytes()
            for b in fbytes
        ]

    return mk(base_first, 101), mk(fresh_first, 202)


class TestInsertClaimLockstep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_claim_only_batch_matches_scalar_oracle(self, seed):
        base, fresh = _claim_only_workload(seed)
        batched, scalar = _build(base, spare=1.0), _build(base, spare=1.0)
        vals = np.arange(1, len(fresh) + 1, dtype=np.uint64) * 7

        mat, lens = keys_to_matrix(fresh)
        res = InsertEngine(batched).apply(mat, lens, vals)

        oracle_engine = InsertEngine(scalar)
        inserted_oracle = []
        for k, v in zip(fresh, vals):
            m1, l1 = keys_to_matrix([k])
            r1 = oracle_engine.apply(m1, l1, np.array([v], dtype=np.uint64))
            inserted_oracle.append(bool(r1.inserted[0]))

        assert res.inserted.all()
        assert res.inserted.tolist() == inserted_oracle
        _assert_layouts_equal(batched, scalar)
        # both sides serve the union of old and new keys identically
        allk = base + fresh
        ga = lookup_batch(batched, *keys_to_matrix(allk))
        gb = lookup_batch(scalar, *keys_to_matrix(allk))
        assert np.array_equal(ga.values, gb.values)
        assert not np.any(ga.values == np.uint64(NIL_VALUE))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_batch_converges_to_scalar_content(self, seed):
        """Structurally interacting fresh keys (shared claim sites) defer
        losers to a retry pass instead of matching the scalar oracle
        byte-for-byte; repeated application must converge to the same
        served content."""
        base = random_keys(200, 12, seed=seed)
        known = set(base)
        fresh = [k for k in random_keys(120, 12, seed=seed + 1)
                 if k not in known]
        # enough spare that node/leaf capacity never binds: under
        # exhaustion the *last* slot goes to whichever key allocates
        # first, which legitimately differs between the two orders
        batched, scalar = _build(base, spare=3.0), _build(base, spare=3.0)
        vals = np.arange(1, len(fresh) + 1, dtype=np.uint64) * 7

        engine = InsertEngine(batched)
        mat, lens = keys_to_matrix(fresh)
        pending = np.arange(len(fresh))
        for _ in range(8):
            res = engine.apply(mat[pending], lens[pending], vals[pending])
            pending = pending[res.deferred]
            if pending.size == 0:
                break

        oracle_engine = InsertEngine(scalar)
        oracle_deferred = []
        for k, v in zip(fresh, vals):
            m1, l1 = keys_to_matrix([k])
            r1 = oracle_engine.apply(m1, l1, np.array([v], dtype=np.uint64))
            oracle_deferred.append(bool(r1.deferred[0]))

        # the same rows end up host-deferred, and both sides serve the
        # same key -> value map afterwards (buffer layout may differ)
        assert sorted(pending.tolist()) == [
            i for i, d in enumerate(oracle_deferred) if d
        ]
        allk = base + fresh
        ga = lookup_batch(batched, *keys_to_matrix(allk))
        gb = lookup_batch(scalar, *keys_to_matrix(allk))
        assert np.array_equal(ga.values, gb.values)

    def test_duplicate_new_keys_highest_thread_wins(self):
        base = random_keys(64, 12, seed=21)
        known = set(base)
        k = next(x for x in random_keys(8, 12, seed=22) if x not in known)
        layout = _build(base, spare=1.0)
        engine = InsertEngine(layout)
        mat, lens = keys_to_matrix([k, k, k])
        vals = np.array([10, 20, 30], dtype=np.uint64)
        res = engine.apply(mat, lens, vals)
        # one claim winner (the highest thread), losers deferred
        assert res.inserted.tolist() == [False, False, True]
        assert res.deferred.tolist() == [True, True, False]
        got = lookup_batch(layout, *keys_to_matrix([k]))
        assert got.values.tolist() == [30]
        # a second pass converges the losers into plain value updates
        res2 = engine.apply(mat, lens, vals)
        assert res2.n_inserted == 0 and res2.n_deferred == 0
        got = lookup_batch(layout, *keys_to_matrix([k]))
        assert got.values.tolist() == [30]  # LWW again

    def test_delete_then_insert_reuses_freed_slot(self):
        base = random_keys(128, 12, seed=33)
        layout = _build(base, spare=0.5)
        victim = base[11]
        res = delete_batch(layout, *keys_to_matrix([victim]))
        assert res.unlinked == 1
        vcode = [c for c in LEAF_TYPE_CODES if layout.free_leaves[c]]
        assert len(vcode) == 1
        freed = layout.free_leaves[vcode[0]][-1]

        known = set(base)
        newk = next(x for x in random_keys(8, 12, seed=34)
                    if x not in known)
        ins = InsertEngine(layout).apply(
            *keys_to_matrix([newk]), np.array([909], dtype=np.uint64)
        )
        assert ins.n_inserted == 1
        # the freed slot was recycled ("the leaf index is pushed into a
        # list of free leaves which can be used for future inserts")
        assert layout.free_leaves[vcode[0]] == []
        got = lookup_batch(layout, *keys_to_matrix([newk]))
        assert int(link_types(got.locations)[0]) == vcode[0]
        assert int(link_indices(got.locations)[0]) == freed
        assert got.values.tolist() == [909]
