"""Unit tests for the workload generators (section 4.1)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workloads.btc import BTC_KEY_LEN, btc_like_keys
from repro.workloads.distributions import uniform_indices, zipf_indices
from repro.workloads.queries import (
    QueryMix,
    delete_queries,
    lookup_queries,
    mixed_queries,
    range_queries,
    update_queries,
)
from repro.workloads.synthetic import (
    build_tree,
    dense_keys,
    mixed_length_keys,
    random_int_keys,
    random_keys,
)


class TestSyntheticKeys:
    def test_count_length_distinct(self):
        keys = random_keys(500, 16, seed=1)
        assert len(keys) == 500
        assert len(set(keys)) == 500
        assert all(len(k) == 16 for k in keys)

    def test_reproducible(self):
        assert random_keys(100, 8, seed=9) == random_keys(100, 8, seed=9)

    def test_different_seeds_differ(self):
        assert random_keys(100, 8, seed=1) != random_keys(100, 8, seed=2)

    def test_density_confines_key_space(self):
        keys = random_keys(256, 8, seed=3, density=0.9)
        # high density forces the leading bytes to zero
        assert all(k[0] == 0 for k in keys)

    def test_invalid_args(self):
        with pytest.raises(ReproError):
            random_keys(0, 8)
        with pytest.raises(ReproError):
            random_keys(10, 0)

    def test_random_int_keys(self):
        keys = random_int_keys(200, seed=4)
        assert len(set(keys)) == 200
        assert all(len(k) == 8 for k in keys)

    def test_dense_keys_consecutive(self):
        keys = dense_keys(10, width=4, start=5)
        assert keys[0] == (5).to_bytes(4, "big")
        assert keys == sorted(keys)

    def test_mixed_length_fraction(self):
        keys = mixed_length_keys(200, long_fraction=0.25, seed=5)
        long_count = sum(1 for k in keys if len(k) > 32)
        assert long_count == 50

    def test_build_tree(self):
        keys = random_keys(50, 8, seed=6)
        t = build_tree(keys)
        assert len(t) == 50
        assert t.search(keys[0]) == 0

    def test_build_tree_custom_values(self):
        keys = random_keys(5, 8, seed=6)
        t = build_tree(keys, values=[10, 20, 30, 40, 50])
        assert t.search(keys[2]) == 30


class TestBtcKeys:
    def test_shape(self):
        keys = btc_like_keys(300, seed=1)
        assert len(keys) == 300
        assert len(set(keys)) == 300
        assert all(len(k) == BTC_KEY_LEN for k in keys)

    def test_iri_like(self):
        keys = btc_like_keys(100, seed=2)
        assert all(k.startswith(b"http") for k in keys)

    def test_deeper_trees_than_uniform(self):
        from repro.art.stats import collect_stats

        n = 800
        uni = build_tree(random_keys(n, 32, seed=3))
        btc = build_tree(btc_like_keys(n, seed=3))
        s_uni = collect_stats(uni.root)
        s_btc = collect_stats(btc.root)
        # the paper: long duplicate segments increase overall tree depth
        assert s_btc.avg_leaf_level > s_uni.avg_leaf_level

    def test_reproducible(self):
        assert btc_like_keys(50, seed=7) == btc_like_keys(50, seed=7)


class TestDistributions:
    def test_uniform_bounds(self):
        idx = uniform_indices(100, 1000, seed=1)
        assert idx.min() >= 0 and idx.max() < 100

    def test_zipf_skew(self):
        idx = zipf_indices(1000, 5000, a=1.2, seed=1)
        # the most popular key dominates
        top_share = np.bincount(idx).max() / idx.size
        assert top_share > 0.2

    def test_zipf_validation(self):
        with pytest.raises(ReproError):
            zipf_indices(10, 10, a=1.0)
        with pytest.raises(ReproError):
            uniform_indices(0, 10)


class TestQueryGenerators:
    KEYS = random_keys(300, 8, seed=11)

    def test_lookup_hit_rate(self):
        q = lookup_queries(self.KEYS, 1000, hit_rate=0.5, seed=2)
        present = set(self.KEYS)
        hits = sum(1 for k in q if k in present)
        assert 400 <= hits <= 600

    def test_lookup_all_hits(self):
        q = lookup_queries(self.KEYS, 200, seed=3)
        assert all(k in set(self.KEYS) for k in q)

    def test_update_values_in_range(self):
        ups = update_queries(self.KEYS, 100, seed=4)
        assert all(0 <= v < 2**62 for _, v in ups)

    def test_delete_distinct(self):
        dels = delete_queries(self.KEYS, 50, seed=5)
        assert len(set(dels)) == 50

    def test_delete_too_many(self):
        with pytest.raises(ReproError):
            delete_queries(self.KEYS, 301)

    def test_range_bounds_ordered(self):
        ranges = range_queries(sorted(self.KEYS), 20, span=10, seed=6)
        assert all(lo <= hi for lo, hi in ranges)

    def test_mix_validation(self):
        with pytest.raises(ReproError):
            QueryMix(lookups=0.5, updates=0.2, deletes=0.2)

    def test_mixed_stream_composition(self):
        ops = mixed_queries(self.KEYS, 500, QueryMix(), seed=7)
        kinds = {k for k, _ in ops}
        assert kinds <= {"lookup", "update", "delete"}
        assert len(ops) == 500
