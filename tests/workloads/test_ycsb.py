"""Unit tests for YCSB-style workload profiles."""

import pytest

from repro.errors import ReproError
from repro.host.engine import CuartEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.workloads.ycsb import (
    KEY_WIDTH,
    PROFILES,
    YcsbProfile,
    ycsb_keyspace,
    ycsb_stream,
)


class TestProfiles:
    def test_all_six_core_profiles(self):
        assert set(PROFILES) == {"A", "B", "C", "D", "E", "F"}

    def test_mixes_sum_to_one(self):
        for p in PROFILES.values():
            assert abs(p.read + p.update + p.insert + p.scan + p.rmw - 1) < 1e-9

    def test_invalid_mix_rejected(self):
        with pytest.raises(ReproError):
            YcsbProfile("X", read=0.5, update=0.4)

    def test_keyspace(self):
        ks = ycsb_keyspace(5)
        assert len(ks) == 5
        assert all(len(k) == KEY_WIDTH for k in ks)
        assert ks == sorted(ks)


class TestStreams:
    def test_workload_c_is_read_only(self):
        ops = ycsb_stream("C", 1000, 500, seed=1)
        assert all(kind == "lookup" for kind, _ in ops)
        assert len(ops) == 500

    def test_workload_a_mix(self):
        ops = ycsb_stream("A", 1000, 2000, seed=2)
        kinds = [k for k, _ in ops]
        reads = kinds.count("lookup")
        updates = kinds.count("update")
        assert 0.4 < reads / len(ops) < 0.6
        assert reads + updates == len(ops)

    def test_workload_f_rmw_pairs(self):
        ops = ycsb_stream("F", 1000, 1000, seed=3)
        # every update in F immediately follows a lookup of the same key
        for i, (kind, payload) in enumerate(ops):
            if kind == "update":
                prev_kind, prev_key = ops[i - 1]
                assert prev_kind == "lookup"
                assert prev_key == payload[0]

    def test_workload_d_inserts_fresh_keys(self):
        ops = ycsb_stream("D", 100, 1000, seed=4)
        inserted = [p[0] for k, p in ops if k == "insert"]
        assert inserted  # 5% of 1000
        assert len(set(inserted)) == len(inserted)  # strictly fresh
        base = set(ycsb_keyspace(100))
        assert not (set(inserted) & base)

    def test_workload_e_scans(self):
        ops = ycsb_stream("E", 1000, 400, seed=5)
        scans = [(lo, hi) for k, (lo, hi) in
                 ((k, p) for k, p in ops if k == "scan")]
        assert len(scans) > 300
        assert all(lo <= hi for lo, hi in scans)

    def test_zipf_skews_requests(self):
        ops = ycsb_stream("C", 10_000, 5000, seed=6)
        from collections import Counter

        top = Counter(p for _, p in ops).most_common(1)[0][1]
        assert top > 500  # hottest record dominates under zipf

    def test_reproducible(self):
        assert ycsb_stream("A", 500, 300, seed=9) == ycsb_stream(
            "A", 500, 300, seed=9
        )

    def test_invalid_records(self):
        with pytest.raises(ReproError):
            ycsb_stream("A", 0, 10)


class TestEndToEnd:
    @pytest.mark.parametrize("profile", ["A", "B", "D", "E", "F"])
    def test_profiles_execute_on_the_engine(self, profile):
        n = 400
        eng = CuartEngine(batch_size=128, spare=0.5)
        eng.populate((k, i) for i, k in enumerate(ycsb_keyspace(n)))
        eng.map_to_device()
        stream = ycsb_stream(profile, n, 300, seed=10)
        results, report = MixedWorkloadExecutor(eng).run(stream)
        assert report.operations == len(stream)
        # reads of loaded records always hit (D reads may target records
        # newer than the frontier snapshot; allow those misses)
        if profile in ("A", "B", "F"):
            assert report.misses == 0
        if profile == "E":
            assert report.records_scanned > 0
