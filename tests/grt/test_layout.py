"""Unit tests for the GRT single-buffer layout."""

import numpy as np
import pytest

from repro.art.tree import AdaptiveRadixTree
from repro.constants import GRT_HEADER_BYTES, LINK_N4, LINK_N256
from repro.errors import StaleLayoutError
from repro.grt.layout import GRT_LEAF_TYPE, GrtLayout, _leaf_record_size

from tests.conftest import make_tree


class TestSerialization:
    def test_empty_tree(self):
        lay = GrtLayout(AdaptiveRadixTree())
        assert lay.root_offset == 0
        assert lay.max_levels == 0

    def test_single_leaf(self):
        lay = GrtLayout(make_tree([(b"hello!", 42)]))
        off = lay.root_offset
        assert off == 16  # right after the sentinel
        buf = lay.buffer
        assert buf[off] == GRT_LEAF_TYPE
        key_len = int(buf[off + 2]) | (int(buf[off + 3]) << 8)
        assert key_len == 6
        value = int.from_bytes(bytes(buf[off + 8 : off + 16]), "little")
        assert value == 42
        assert bytes(buf[off + 16 : off + 22]) == b"hello!"

    def test_offset_zero_is_null(self):
        lay = GrtLayout(make_tree([(b"ab", 1), (b"cd", 2)]))
        # sentinel region stays zero
        assert not lay.buffer[:16].any()

    def test_node_header_fields(self):
        t = make_tree([(b"pp-a", 1), (b"pp-b", 2)])
        lay = GrtLayout(t)
        off = lay.root_offset
        assert lay.buffer[off] == LINK_N4
        assert lay.buffer[off + 1] == 2  # two children
        plen = int(lay.buffer[off + 2]) | (int(lay.buffer[off + 3]) << 8)
        assert plen == 3
        assert bytes(lay.buffer[off + 4 : off + 7]) == b"pp-"

    def test_n256_count_saturates(self):
        t = make_tree([(bytes([b, 1]), b) for b in range(256)])
        lay = GrtLayout(t)
        assert lay.buffer[lay.root_offset] == LINK_N256
        assert lay.buffer[lay.root_offset + 1] == 255  # saturated u8

    def test_buffer_is_tightly_packed(self, medium_tree):
        lay = GrtLayout(medium_tree)
        # cursor consumed the whole allocation
        assert lay._cursor == lay.buffer.size

    def test_leaf_record_size_padded_to_8(self):
        assert _leaf_record_size(1) == GRT_HEADER_BYTES + 8
        assert _leaf_record_size(8) == GRT_HEADER_BYTES + 8
        assert _leaf_record_size(9) == GRT_HEADER_BYTES + 16

    def test_device_bytes(self, medium_tree):
        lay = GrtLayout(medium_tree)
        assert lay.device_bytes == lay.buffer.nbytes
        assert lay.num_keys == len(medium_tree)

    def test_staleness_guard(self, medium_tree):
        lay = GrtLayout(medium_tree)
        medium_tree.insert(b"\x07\x07\x07\x07\x07\x07\x07\x07", 5)
        with pytest.raises(StaleLayoutError):
            lay.check_fresh()
        medium_tree.delete(b"\x07\x07\x07\x07\x07\x07\x07\x07")

    def test_read_u64_vectorized(self, medium_tree):
        lay = GrtLayout(medium_tree)
        offs = np.array([16], dtype=np.int64)  # root record
        got = lay.read_u64(offs)
        expect = int.from_bytes(bytes(lay.buffer[16:24]), "little")
        assert int(got[0]) == expect
