"""Unit + property tests for the GRT lookup kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import NIL_VALUE
from repro.grt.kernel import grt_lookup_batch
from repro.grt.layout import GrtLayout
from repro.util.keys import keys_to_matrix

from tests.conftest import batch_of, make_tree


class TestGrtLookup:
    def test_all_hits(self, medium_tree, medium_keys):
        lay = GrtLayout(medium_tree)
        mat, lens = batch_of(medium_keys)
        res = grt_lookup_batch(lay, mat, lens)
        assert res.hits.all()
        assert res.values.tolist() == list(range(len(medium_keys)))

    def test_misses(self, medium_tree):
        lay = GrtLayout(medium_tree)
        mat, lens = batch_of([b"\xee" * 8])
        res = grt_lookup_batch(lay, mat, lens)
        assert not res.hits.any()

    def test_locations_point_at_leaf_records(self, medium_tree, medium_keys):
        lay = GrtLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:20])
        res = grt_lookup_batch(lay, mat, lens)
        from repro.grt.layout import GRT_LEAF_TYPE

        for off in res.locations:
            assert lay.buffer[int(off)] == GRT_LEAF_TYPE

    def test_empty_tree(self):
        from repro.art.tree import AdaptiveRadixTree

        lay = GrtLayout(AdaptiveRadixTree())
        mat, lens = batch_of([b"x"])
        res = grt_lookup_batch(lay, mat, lens)
        assert not res.hits.any()

    def test_two_dependent_rounds_per_level(self, medium_tree, medium_keys):
        cu_lay = GrtLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:64])
        res = grt_lookup_batch(cu_lay, mat, lens)
        # header + body per level: rounds must be even and >= 2x levels-1
        assert res.log.dependent_rounds % 2 == 0
        assert res.log.dependent_rounds >= 4

    def test_all_transactions_unaligned(self, medium_tree, medium_keys):
        lay = GrtLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:64])
        res = grt_lookup_batch(lay, mat, lens)
        assert res.log.unaligned_transactions == res.log.total_transactions

    def test_grt_needs_more_transactions_than_cuart(
        self, medium_tree, medium_keys
    ):
        from repro.cuart.layout import CuartLayout
        from repro.cuart.lookup import lookup_batch

        g_lay = GrtLayout(medium_tree)
        c_lay = CuartLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:256])
        g = grt_lookup_batch(g_lay, mat, lens)
        c = lookup_batch(c_lay, mat, lens)
        assert g.log.total_transactions > c.log.total_transactions
        assert g.log.dependent_rounds > c.log.dependent_rounds

    def test_long_prefix_optimistic_check(self):
        p = b"w" * 20  # exceeds GRT's 12-byte stored window
        t = make_tree([(p + b"aQ", 1), (p + b"bQ", 2)])
        lay = GrtLayout(t)
        mat, lens = batch_of([p + b"aQ", b"w" * 13 + b"XXXXXXX" + b"aQ"])
        res = grt_lookup_batch(lay, mat, lens)
        assert int(res.values[0]) == 1
        assert int(res.values[1]) == NIL_VALUE

    def test_variable_length_keys(self):
        t = make_tree([(b"ab", 1), (b"cdef", 2), (b"ghijklmnop", 3)])
        lay = GrtLayout(t)
        mat, lens = batch_of([b"ab", b"cdef", b"ghijklmnop", b"cd"])
        res = grt_lookup_batch(lay, mat, lens)
        assert res.values.tolist()[:3] == [1, 2, 3]
        assert int(res.values[3]) == NIL_VALUE


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=3, max_size=3), st.integers(0, 2**40), min_size=1,
        max_size=120,
    ),
    st.lists(st.binary(min_size=1, max_size=5), max_size=40),
)
def test_grt_matches_host_tree(pairs, probes):
    t = make_tree(pairs.items())
    lay = GrtLayout(t)
    queries = list(pairs.keys()) + probes
    mat, lens = keys_to_matrix(queries)
    res = grt_lookup_batch(lay, mat, lens)
    for q, v in zip(queries, res.values):
        expect = t.search(q)
        got = None if int(v) == NIL_VALUE else int(v)
        assert got == expect


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=2, max_size=8), st.integers(0, 2**40), min_size=1,
        max_size=80,
    )
)
def test_grt_and_cuart_agree(pairs):
    from repro.cuart.layout import CuartLayout
    from repro.cuart.lookup import lookup_batch

    pruned = {}
    for k in sorted(pairs):
        if not any(k != o and k.startswith(o) for o in pruned):
            pruned[k] = pairs[k]
    t = make_tree(pruned.items())
    g_lay = GrtLayout(t)
    c_lay = CuartLayout(t)
    queries = sorted(pruned)
    mat, lens = keys_to_matrix(queries)
    g = grt_lookup_batch(g_lay, mat, lens)
    c = lookup_batch(c_lay, mat, lens)
    assert (g.values == c.values).all()
