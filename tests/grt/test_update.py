"""Unit tests for the GRT direct-atomic update path."""

import numpy as np
import pytest

from repro.constants import NIL_VALUE
from repro.grt.kernel import grt_lookup_batch
from repro.grt.layout import GrtLayout
from repro.grt.update import grt_update_batch

from tests.conftest import batch_of


class TestGrtUpdate:
    def test_values_replaced(self, medium_tree, medium_keys):
        lay = GrtLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:3])
        res = grt_update_batch(lay, mat, lens, np.array([9, 8, 7], dtype=np.uint64))
        assert res.found.all()
        assert res.writes == 3
        after = grt_lookup_batch(lay, mat, lens)
        assert after.values.tolist() == [9, 8, 7]

    def test_last_writer_wins(self, medium_tree, medium_keys):
        lay = GrtLayout(medium_tree)
        k = medium_keys[0]
        mat, lens = batch_of([k, k])
        res = grt_update_batch(lay, mat, lens, np.array([5, 6], dtype=np.uint64))
        assert res.conflicting_writes == 2  # both writes hit one address
        after = grt_lookup_batch(lay, *batch_of([k]))
        assert int(after.values[0]) == 6

    def test_missing_keys_skipped(self, medium_tree):
        lay = GrtLayout(medium_tree)
        mat, lens = batch_of([b"\xcc" * 8])
        res = grt_update_batch(lay, mat, lens, np.array([1], dtype=np.uint64))
        assert not res.found.any()
        assert res.writes == 0
        assert res.log.serial_stall_s == 0.0

    def test_delete_via_nil(self, medium_tree, medium_keys):
        lay = GrtLayout(medium_tree)
        mat, lens = batch_of(medium_keys[:2])
        res = grt_update_batch(
            lay, mat, lens, np.array([0, 0], dtype=np.uint64),
            deletes=np.array([True, False]),
        )
        after = grt_lookup_batch(lay, mat, lens)
        assert int(after.values[0]) == NIL_VALUE
        assert int(after.values[1]) == 0

    def test_stall_grows_with_batch(self, medium_tree, medium_keys):
        lay = GrtLayout(medium_tree)
        small = grt_update_batch(
            lay, *batch_of(medium_keys[:8]),
            np.arange(8).astype(np.uint64),
        )
        big = grt_update_batch(
            lay, *batch_of(medium_keys[:512]),
            np.arange(512).astype(np.uint64),
        )
        assert big.log.serial_stall_s > small.log.serial_stall_s

    def test_atomics_charged_per_write(self, medium_tree, medium_keys):
        lay = GrtLayout(medium_tree)
        res = grt_update_batch(
            lay, *batch_of(medium_keys[:32]), np.arange(32).astype(np.uint64)
        )
        assert res.log.atomic_ops >= 32
