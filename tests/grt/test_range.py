"""Unit + property tests for GRT range queries (in-order buffer scan)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grt.layout import GrtLayout
from repro.grt.range import grt_range_query
from repro.util.keys import encode_int
from repro.workloads import build_tree, random_keys

from tests.conftest import make_tree


@pytest.fixture(scope="module")
def grt_layout():
    keys = [encode_int(v, 4) for v in range(0, 3000, 7)]
    tree = build_tree(keys)
    return GrtLayout(tree), sorted(keys)


class TestGrtRange:
    def test_full_range(self, grt_layout):
        lay, keys = grt_layout
        res = grt_range_query(lay, b"\x00", b"\xff" * 4)
        assert res.keys == keys

    def test_inner_window(self, grt_layout):
        lay, keys = grt_layout
        res = grt_range_query(lay, keys[40], keys[60])
        assert res.keys == keys[40:61]
        assert res.values.tolist() == list(range(40, 61))

    def test_empty_window(self, grt_layout):
        lay, _ = grt_layout
        res = grt_range_query(lay, encode_int(1, 4), encode_int(2, 4))
        assert len(res) == 0

    def test_empty_tree(self):
        from repro.art.tree import AdaptiveRadixTree

        lay = GrtLayout(AdaptiveRadixTree())
        assert len(grt_range_query(lay, b"\x00", b"\xff")) == 0

    def test_scan_stops_past_hi(self, grt_layout):
        lay, keys = grt_layout
        narrow = grt_range_query(lay, keys[0], keys[5])
        wide = grt_range_query(lay, keys[0], keys[-1])
        assert narrow.records_scanned < wide.records_scanned

    def test_descent_skips_earlier_subtrees(self, grt_layout):
        lay, keys = grt_layout
        late = grt_range_query(lay, keys[-20], keys[-1])
        early = grt_range_query(lay, keys[0], keys[-1])
        assert late.records_scanned < early.records_scanned
        assert late.keys == keys[-20:]

    def test_transactions_unaligned(self, grt_layout):
        lay, keys = grt_layout
        res = grt_range_query(lay, keys[0], keys[10])
        assert res.log.unaligned_transactions == res.log.total_transactions
        assert res.log.total_transactions > 0

    def test_grt_scans_more_than_cuart_transfers(self, grt_layout):
        """CuART ships [start,end) index pairs over ordered leaf arrays;
        GRT must decode interleaved node records on the way."""
        from repro.cuart.layout import CuartLayout
        from repro.cuart.range_query import range_query

        lay, keys = grt_layout
        cu = CuartLayout(lay._source)
        a = range_query(cu, keys[100], keys[200])
        b = grt_range_query(lay, keys[100], keys[200])
        assert a.keys == b.keys
        # the GRT scan touched inner records too
        assert b.records_scanned > len(b.keys)


@settings(max_examples=25, deadline=None)
@given(
    st.dictionaries(st.binary(min_size=3, max_size=5), st.integers(0, 2**30),
                    min_size=1, max_size=100),
    st.binary(min_size=1, max_size=6),
    st.binary(min_size=1, max_size=6),
)
def test_grt_range_matches_model(pairs, a, b):
    pruned = {}
    for k in sorted(pairs):
        if not any(k != o and k.startswith(o) for o in pruned):
            pruned[k] = pairs[k]
    lo, hi = (a, b) if a <= b else (b, a)
    lay = GrtLayout(make_tree(pruned.items()))
    res = grt_range_query(lay, lo, hi)
    expect = sorted(k for k in pruned if lo <= k <= hi)
    assert res.keys == expect
    assert [int(v) for v in res.values] == [pruned[k] for k in expect]
