"""Unit tests for tree statistics and memory models."""

import pytest

from repro.art.stats import (
    TreeStats,
    collect_stats,
    leaf_type_for_key,
    visit_mix_per_lookup,
)
from repro.constants import LINK_LEAF8, LINK_LEAF16, LINK_LEAF32, LINK_N4
from repro.errors import KeyTooLongError
from repro.util.keys import encode_int

from tests.conftest import make_tree


class TestLeafClassification:
    @pytest.mark.parametrize(
        "klen,code",
        [(1, LINK_LEAF8), (8, LINK_LEAF8), (9, LINK_LEAF16), (16, LINK_LEAF16),
         (17, LINK_LEAF32), (32, LINK_LEAF32)],
    )
    def test_boundaries(self, klen, code):
        assert leaf_type_for_key(klen) == code

    def test_too_long(self):
        with pytest.raises(KeyTooLongError):
            leaf_type_for_key(33)


class TestCollectStats:
    def test_empty(self):
        s = collect_stats(None)
        assert s.num_keys == 0
        assert s.avg_leaf_level == 0.0

    def test_single_leaf(self):
        t = make_tree([(b"abcd", 1)])
        s = collect_stats(t.root)
        assert s.num_keys == 1
        assert s.leaf_counts[LINK_LEAF8] == 1
        assert s.leaf_level_histogram == {0: 1}

    def test_counts_and_levels(self):
        t = make_tree([(b"aa", 1), (b"ab", 2), (b"b" * 10, 3)])
        s = collect_stats(t.root)
        assert s.num_keys == 3
        assert s.node_counts[LINK_N4] == 2  # root + inner split
        assert s.leaf_counts[LINK_LEAF8] == 2
        assert s.leaf_counts[LINK_LEAF16] == 1
        assert s.max_key_len == 10
        assert s.avg_key_len == pytest.approx(14 / 3)

    def test_compressed_bytes(self):
        t = make_tree([(b"pppppX", 1), (b"pppppY", 2)])
        s = collect_stats(t.root)
        assert s.compressed_bytes == 5

    def test_visit_mix_weighting(self):
        # root Node4 visited by every lookup; its weight must be 1.0
        t = make_tree([(encode_int(v, 4), v) for v in (1, 2, 3, 600)])
        s = collect_stats(t.root)
        mix = visit_mix_per_lookup(s)
        assert mix[LINK_N4] >= 1.0
        assert mix[LINK_LEAF8] == pytest.approx(1.0)

    def test_level_type_mix_recorded(self, medium_tree):
        s = collect_stats(medium_tree.root)
        assert len(s.level_type_mix) >= 2
        assert sum(s.leaf_level_histogram.values()) == s.num_keys


class TestMemoryModels:
    def test_ordering_of_footprints(self, medium_tree):
        s = collect_stats(medium_tree.root)
        art = s.art_host_bytes()
        grt = s.grt_device_bytes()
        cu = s.cuart_device_bytes()
        assert art > 0 and grt > 0 and cu > 0
        # the three footprint models must be of comparable magnitude —
        # they describe the same tree in three layouts
        sizes = [art, grt, cu]
        assert max(sizes) / min(sizes) < 3.0
        # 8-byte keys: CuART's leaf8 records undercut GRT's 24-byte
        # dynamic leaves, so the split-buffer layout is smaller here
        assert cu < grt

    def test_root_table_adds_bytes(self, medium_tree):
        s = collect_stats(medium_tree.root)
        assert (
            s.cuart_device_bytes(root_table_entries=256**2)
            == s.cuart_device_bytes() + 256**2 * 8
        )

    def test_avg_leaf_level_weighted(self):
        t = make_tree([(b"aa", 1), (b"ab", 2)])
        s = collect_stats(t.root)
        assert s.avg_leaf_level == pytest.approx(1.0)
