"""Unit and property tests for the host Adaptive Radix Tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.nodes import Leaf, Node4, Node16, Node48, Node256
from repro.art.tree import AdaptiveRadixTree
from repro.errors import KeyEncodingError, KeyPrefixError
from repro.util.keys import encode_int


def make_tree(pairs):
    t = AdaptiveRadixTree()
    for k, v in pairs:
        t.insert(k, v)
    return t


class TestBasics:
    def test_empty(self):
        t = AdaptiveRadixTree()
        assert len(t) == 0
        assert t.search(b"x") is None
        assert t.minimum() is None and t.maximum() is None

    def test_single(self):
        t = make_tree([(b"hello\x00", 5)])
        assert t.search(b"hello\x00") == 5
        assert t.search(b"hellp\x00") is None
        assert len(t) == 1

    def test_two_keys_split_leaf(self):
        t = make_tree([(b"aa", 1), (b"ab", 2)])
        assert t.search(b"aa") == 1
        assert t.search(b"ab") == 2
        assert isinstance(t.root, Node4)
        assert t.root.prefix == b"a"

    def test_update_in_place(self):
        t = make_tree([(b"k1", 1)])
        t.insert(b"k1", 99)
        assert t.search(b"k1") == 99
        assert len(t) == 1

    def test_contains(self):
        t = make_tree([(b"q", 0)])
        assert b"q" in t
        assert b"r" not in t

    def test_version_bumps_on_mutation(self):
        t = AdaptiveRadixTree()
        v0 = t.version
        t.insert(b"a", 1)
        assert t.version > v0
        v1 = t.version
        t.delete(b"a")
        assert t.version > v1


class TestGrowth:
    def test_grows_through_all_node_types(self):
        t = AdaptiveRadixTree()
        for b in range(256):
            t.insert(bytes([0, b]), b)
        assert isinstance(t.root, Node256)
        for b in range(256):
            assert t.search(bytes([0, b])) == b

    @pytest.mark.parametrize(
        "n,expected",
        [(4, Node4), (5, Node16), (17, Node48), (49, Node256)],
    )
    def test_type_by_fanout(self, n, expected):
        t = AdaptiveRadixTree()
        for b in range(n):
            t.insert(bytes([b, 0]), b)
        assert isinstance(t.root, expected)


class TestPathCompression:
    def test_long_shared_prefix_single_node(self):
        t = make_tree([(b"aaaaaaaaaaaaaaaaaaaax", 1), (b"aaaaaaaaaaaaaaaaaaaay", 2)])
        assert isinstance(t.root, Node4)
        assert t.root.prefix == b"a" * 20
        assert t.search(b"aaaaaaaaaaaaaaaaaaaax") == 1

    def test_prefix_split(self):
        t = make_tree([(b"abcdef", 1), (b"abcxyz", 2), (b"abq", 3)])
        assert t.search(b"abcdef") == 1
        assert t.search(b"abcxyz") == 2
        assert t.search(b"abq") == 3
        assert t.root.prefix == b"ab"

    def test_lookup_shorter_than_prefix_misses(self):
        t = make_tree([(b"abcdef", 1), (b"abcxyz", 2)])
        assert t.search(b"ab") is None
        assert t.search(b"abc") is None

    def test_mismatch_inside_prefix_misses(self):
        t = make_tree([(b"abcdef", 1), (b"abcxyz", 2)])
        assert t.search(b"abZdef") is None


class TestPrefixKeyRejection:
    def test_insert_prefix_of_existing(self):
        t = make_tree([(b"abc", 1)])
        with pytest.raises(KeyPrefixError):
            t.insert(b"ab", 2)

    def test_insert_extension_of_existing(self):
        t = make_tree([(b"abc", 1)])
        with pytest.raises(KeyPrefixError):
            t.insert(b"abcd", 2)

    def test_prefix_ending_inside_inner_node(self):
        t = make_tree([(b"abcd", 1), (b"abce", 2)])
        with pytest.raises(KeyPrefixError):
            t.insert(b"abc", 3)

    def test_prefix_ending_at_split(self):
        t = make_tree([(b"abcdef", 1), (b"abcxyz", 2)])
        with pytest.raises(KeyPrefixError):
            t.insert(b"abc", 3)


class TestValidation:
    def test_empty_key(self):
        with pytest.raises(KeyEncodingError):
            AdaptiveRadixTree().insert(b"", 1)

    def test_non_bytes_key(self):
        with pytest.raises(KeyEncodingError):
            AdaptiveRadixTree().insert("str", 1)  # type: ignore[arg-type]

    def test_nil_value_rejected(self):
        from repro.constants import NIL_VALUE

        with pytest.raises(KeyEncodingError):
            AdaptiveRadixTree().insert(b"k", NIL_VALUE)

    def test_negative_value_rejected(self):
        with pytest.raises(KeyEncodingError):
            AdaptiveRadixTree().insert(b"k", -1)


class TestDelete:
    def test_delete_only_key(self):
        t = make_tree([(b"solo", 1)])
        assert t.delete(b"solo")
        assert len(t) == 0 and t.root is None

    def test_delete_missing(self):
        t = make_tree([(b"a1", 1)])
        assert not t.delete(b"a2")
        assert not t.delete(b"zz")
        assert len(t) == 1

    def test_delete_collapses_node4_to_leaf(self):
        t = make_tree([(b"ka", 1), (b"kb", 2)])
        t.delete(b"ka")
        assert isinstance(t.root, Leaf)
        assert t.search(b"kb") == 2

    def test_delete_merges_prefix(self):
        t = make_tree([(b"aa_x", 1), (b"aa_y", 2), (b"ab", 3)])
        t.delete(b"ab")
        # root should collapse into the aa_ subtree with merged prefix
        assert t.search(b"aa_x") == 1 and t.search(b"aa_y") == 2
        assert isinstance(t.root, Node4)
        assert t.root.prefix == b"aa_"

    def test_delete_shrinks_node16(self):
        t = AdaptiveRadixTree()
        for b in range(5):
            t.insert(bytes([b, 1]), b)
        assert isinstance(t.root, Node16)
        t.delete(bytes([4, 1]))
        assert isinstance(t.root, Node4)
        for b in range(4):
            assert t.search(bytes([b, 1])) == b

    def test_delete_shrinks_node256(self):
        t = AdaptiveRadixTree()
        for b in range(49):
            t.insert(bytes([b, 1]), b)
        assert isinstance(t.root, Node256)
        t.delete(bytes([48, 1]))
        assert isinstance(t.root, Node48)

    def test_delete_all_in_random_order(self):
        import random

        keys = [encode_int(i * 7919, 8) for i in range(300)]
        t = make_tree([(k, i) for i, k in enumerate(keys)])
        order = keys[:]
        random.Random(3).shuffle(order)
        for i, k in enumerate(order):
            assert t.delete(k), k
            assert t.search(k) is None
            assert len(t) == len(keys) - i - 1
        assert t.root is None

    def test_delete_wrong_leaf_same_path(self):
        t = make_tree([(b"abcdef", 1), (b"abcxyz", 2)])
        # traverses to the abcdef leaf but the key differs
        assert not t.delete(b"abcdeg")
        assert t.search(b"abcdef") == 1


class TestOrderedAccess:
    def test_items_sorted(self):
        keys = [encode_int(v, 4) for v in (5, 1, 9, 3, 200, 128)]
        t = make_tree([(k, i) for i, k in enumerate(keys)])
        out = [k for k, _ in t.items()]
        assert out == sorted(keys)

    def test_min_max(self):
        t = make_tree([(b"m", 1), (b"a", 2), (b"z", 3)])
        assert t.minimum() == (b"a", 2)
        assert t.maximum() == (b"z", 3)

    def test_range_query(self):
        t = make_tree([(encode_int(v, 2), v) for v in range(0, 100, 7)])
        got = [v for _, v in t.range_query(encode_int(10, 2), encode_int(50, 2))]
        assert got == [v for v in range(0, 100, 7) if 10 <= v <= 50]

    def test_range_query_empty_interval(self):
        t = make_tree([(b"m", 1)])
        assert list(t.range_query(b"x", b"a")) == []

    def test_range_query_inclusive_bounds(self):
        t = make_tree([(b"a", 1), (b"b", 2), (b"c", 3)])
        assert [k for k, _ in t.range_query(b"a", b"c")] == [b"a", b"b", b"c"]

    def test_prefix_query(self):
        t = make_tree(
            [(b"app\x00", 1), (b"apple\x00", 2), (b"apply\x00", 3), (b"bat\x00", 4)]
        )
        got = [k for k, _ in t.prefix_query(b"appl")]
        assert got == [b"apple\x00", b"apply\x00"]

    def test_prefix_query_full_key(self):
        t = make_tree([(b"one\x00", 1), (b"two\x00", 2)])
        assert [v for _, v in t.prefix_query(b"one\x00")] == [1]

    def test_prefix_query_no_match(self):
        t = make_tree([(b"one\x00", 1)])
        assert list(t.prefix_query(b"xx")) == []

    def test_prefix_query_prefix_inside_compressed_path(self):
        t = make_tree([(b"commonXa", 1), (b"commonXb", 2)])
        assert len(list(t.prefix_query(b"com"))) == 2
        assert len(list(t.prefix_query(b"commonX"))) == 2
        assert list(t.prefix_query(b"commonY")) == []


# ---------------------------------------------------------------------------
# property-based: the tree must behave exactly like a dict with sorted keys
# ---------------------------------------------------------------------------

fixed_keys = st.binary(min_size=4, max_size=4)


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(fixed_keys, st.integers(0, 2**40), max_size=200))
def test_model_insert_search(pairs):
    t = make_tree(pairs.items())
    assert len(t) == len(pairs)
    for k, v in pairs.items():
        assert t.search(k) == v
    assert [k for k, _ in t.items()] == sorted(pairs)


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(fixed_keys, st.integers(0, 2**40), min_size=1, max_size=120),
    st.data(),
)
def test_model_delete(pairs, data):
    t = make_tree(pairs.items())
    doomed = data.draw(
        st.lists(st.sampled_from(sorted(pairs)), unique=True, max_size=len(pairs))
    )
    for k in doomed:
        assert t.delete(k)
    remaining = {k: v for k, v in pairs.items() if k not in set(doomed)}
    assert len(t) == len(remaining)
    for k, v in remaining.items():
        assert t.search(k) == v
    for k in doomed:
        assert t.search(k) is None
    assert [k for k, _ in t.items()] == sorted(remaining)


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(fixed_keys, st.integers(0, 2**20), max_size=150),
    fixed_keys,
    fixed_keys,
)
def test_model_range_query(pairs, a, b):
    lo, hi = min(a, b), max(a, b)
    t = make_tree(pairs.items())
    got = list(t.range_query(lo, hi))
    expect = sorted((k, v) for k, v in pairs.items() if lo <= k <= hi)
    assert got == expect


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(st.binary(min_size=1, max_size=6), st.integers(0, 99), max_size=80),
    st.binary(min_size=0, max_size=3),
)
def test_model_prefix_query(pairs, prefix):
    # filter to a prefix-free key set
    keys = sorted(pairs)
    pruned = {}
    for k in keys:
        if not any(k != o and k.startswith(o) for o in pruned):
            pruned[k] = pairs[k]
    t = make_tree(pruned.items())
    got = list(t.prefix_query(prefix))
    expect = sorted((k, v) for k, v in pruned.items() if k.startswith(prefix))
    assert got == expect
