"""Unit + property tests for the tree invariant checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.nodes import Leaf, Node4
from repro.art.tree import AdaptiveRadixTree
from repro.art.verify import verify_tree
from repro.util.keys import encode_int

from tests.conftest import make_tree


class TestHealthyTrees:
    def test_empty(self):
        assert verify_tree(AdaptiveRadixTree()) == []

    def test_single_leaf(self):
        assert verify_tree(make_tree([(b"k", 1)])) == []

    def test_after_growth(self):
        t = make_tree([(bytes([b, 1]), b) for b in range(256)])
        assert verify_tree(t) == []

    def test_after_delete_storm(self):
        keys = [encode_int(i * 31, 4) for i in range(400)]
        t = make_tree([(k, i) for i, k in enumerate(keys)])
        for k in keys[::2]:
            t.delete(k)
        assert verify_tree(t) == []


class TestDetectsCorruption:
    def test_size_mismatch(self):
        t = make_tree([(b"aa", 1), (b"ab", 2)])
        t._size = 5
        assert any("size mismatch" in p for p in verify_tree(t))

    def test_single_child_node4(self):
        t = make_tree([(b"aa", 1), (b"ab", 2), (b"b1", 3)])
        # manually break path compression: leave a 1-child Node4
        inner = t.root.find_child(ord("a"))
        assert isinstance(inner, Node4)
        inner.remove_child(ord("b"))
        t._size -= 1
        assert any("should have been collapsed" in p for p in verify_tree(t))

    def test_unsorted_keys(self):
        t = make_tree([(b"aa", 1), (b"ab", 2)])
        t.root.keys.reverse()
        t.root.children.reverse()
        probs = verify_tree(t)
        assert any("unsorted" in p or "byte order" in p for p in probs)

    def test_wrong_leaf_path(self):
        t = make_tree([(b"aa", 1), (b"ab", 2)])
        t.root.children[0] = Leaf(b"zz", 9)
        assert any("does not extend its path" in p for p in verify_tree(t))


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(st.binary(min_size=3, max_size=3), st.integers(0, 99),
                    max_size=150),
    st.data(),
)
def test_mutation_storm_preserves_invariants(pairs, data):
    t = make_tree(pairs.items())
    keys = sorted(pairs)
    if keys:
        doomed = data.draw(
            st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
        )
        for k in doomed:
            t.delete(k)
    assert verify_tree(t) == []
