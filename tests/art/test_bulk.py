"""Unit + property tests: bulk loading equals incremental insertion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.bulk import bulk_load
from repro.art.verify import verify_tree
from repro.errors import KeyPrefixError, ReproError
from repro.util.keys import encode_int
from repro.workloads import random_keys

from tests.conftest import make_tree


class TestBulkLoad:
    def test_empty(self):
        t = bulk_load([])
        assert len(t) == 0

    def test_single(self):
        t = bulk_load([b"only"], [7])
        assert t.search(b"only") == 7

    def test_values_default_to_input_positions(self):
        t = bulk_load([b"beta", b"alpha"])  # unsorted input order kept
        assert t.search(b"beta") == 0
        assert t.search(b"alpha") == 1

    def test_duplicate_rejected(self):
        with pytest.raises(ReproError):
            bulk_load([b"x", b"x"])

    def test_prefix_key_rejected(self):
        with pytest.raises(KeyPrefixError):
            bulk_load([b"ab", b"abc"])

    def test_large_random_set(self):
        keys = random_keys(5000, 8, seed=151)
        t = bulk_load(keys)
        assert len(t) == 5000
        assert verify_tree(t) == []
        for i in (0, 777, 4999):
            assert t.search(keys[i]) == i

    def test_node_types_adapt(self):
        from repro.art.nodes import Node256

        keys = [bytes([b, 1]) for b in range(200)]
        t = bulk_load(keys)
        assert isinstance(t.root, Node256)

    def test_compressed_prefixes_built(self):
        t = bulk_load([b"commonA", b"commonB"])
        assert t.root.prefix == b"common"

    def test_device_mapping_identical_to_incremental(self):
        from repro.cuart.layout import CuartLayout

        keys = random_keys(800, 8, seed=152)
        bulk = CuartLayout(bulk_load(keys))
        incr = CuartLayout(make_tree((k, i) for i, k in enumerate(keys)))
        # identical structure -> identical buffers
        for code in (1, 2, 3, 4):
            assert bulk.node_count(code) == incr.node_count(code)
            assert (bulk.nodes[code].children == incr.nodes[code].children).all()
        for code in (5, 6, 7):
            assert (bulk.leaves[code].keys == incr.leaves[code].keys).all()
            assert (bulk.leaves[code].values == incr.leaves[code].values).all()


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(st.binary(min_size=3, max_size=3), st.integers(0, 2**40),
                    max_size=200)
)
def test_bulk_equals_incremental_property(pairs):
    keys = list(pairs)
    incremental = make_tree(pairs.items())
    bulk = bulk_load(keys, [pairs[k] for k in keys])
    assert len(bulk) == len(incremental)
    assert verify_tree(bulk) == []
    assert list(bulk.items()) == list(incremental.items())
