"""Unit tests for ordered traversal helpers."""

import pytest

from repro.art.iterate import (
    iter_leaves,
    iter_range,
    maximum_leaf,
    minimum_leaf,
)
from repro.util.keys import encode_int

from tests.conftest import make_tree


class TestLeafIteration:
    def test_empty(self):
        assert list(iter_leaves(None)) == []

    def test_single(self):
        t = make_tree([(b"x", 1)])
        leaves = list(iter_leaves(t.root))
        assert [l.key for l in leaves] == [b"x"]

    def test_order_across_node_types(self):
        keys = [bytes([b, 7]) for b in range(0, 250, 5)]  # 50 keys: Node256
        t = make_tree([(k, i) for i, k in enumerate(keys)])
        got = [l.key for l in iter_leaves(t.root)]
        assert got == sorted(keys)

    def test_order_with_mixed_depths(self):
        keys = [b"a\x00\x01", b"a\x00\x02", b"b12", b"c\xff\xff"]
        t = make_tree([(k, i) for i, k in enumerate(keys)])
        got = [l.key for l in iter_leaves(t.root)]
        assert got == sorted(keys)


class TestMinMax:
    def test_none(self):
        assert minimum_leaf(None) is None
        assert maximum_leaf(None) is None

    def test_deep(self):
        keys = [encode_int(v, 4) for v in (9, 1, 200, 255, 256, 65535)]
        t = make_tree([(k, i) for i, k in enumerate(keys)])
        assert minimum_leaf(t.root).key == encode_int(1, 4)
        assert maximum_leaf(t.root).key == encode_int(65535, 4)


class TestRangePruning:
    def test_range_prunes_but_stays_correct(self):
        keys = [encode_int(v, 2) for v in range(0, 5000, 13) if v < 65536]
        t = make_tree([(k, i) for i, k in enumerate(keys)])
        lo, hi = encode_int(100, 2), encode_int(200, 2)
        got = [k for k, _ in iter_range(t, lo, hi)]
        assert got == [k for k in sorted(keys) if lo <= k <= hi]

    def test_inverted_range_empty(self):
        t = make_tree([(b"m", 1)])
        assert list(iter_range(t, b"z", b"a")) == []

    def test_range_bounds_shorter_than_keys(self):
        t = make_tree([(b"abc", 1), (b"abd", 2), (b"b", 3)])
        got = [k for k, _ in iter_range(t, b"a", b"b")]
        assert got == [b"abc", b"abd", b"b"]

    def test_range_bounds_longer_than_keys(self):
        t = make_tree([(b"ab", 1), (b"cd", 2)])
        got = [k for k, _ in iter_range(t, b"abX", b"cdX")]
        assert got == [b"cd"]
