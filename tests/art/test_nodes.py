"""Unit tests for the four adaptive node types."""

import pytest

from repro.art.nodes import (
    Leaf,
    Node4,
    Node16,
    Node48,
    Node256,
    grown_copy,
    maybe_shrunk_copy,
    node_type_code,
)
from repro.constants import LINK_N4, LINK_N16, LINK_N48, LINK_N256

ALL_NODE_CLASSES = [Node4, Node16, Node48, Node256]


def _fill(node, n):
    for b in range(n):
        node.set_child(b, Leaf(bytes([b]), b))
    return node


@pytest.mark.parametrize("cls", ALL_NODE_CLASSES)
class TestCommonBehaviour:
    def test_empty(self, cls):
        node = cls()
        assert node.num_children == 0
        assert node.find_child(0) is None

    def test_set_and_find(self, cls):
        node = cls()
        leaf = Leaf(b"k", 1)
        node.set_child(42, leaf)
        assert node.find_child(42) is leaf
        assert node.find_child(43) is None
        assert node.num_children == 1

    def test_replace_does_not_grow_count(self, cls):
        node = cls()
        node.set_child(7, Leaf(b"a", 1))
        node.set_child(7, Leaf(b"b", 2))
        assert node.num_children == 1
        assert node.find_child(7).key == b"b"

    def test_remove(self, cls):
        node = cls()
        node.set_child(9, Leaf(b"x", 1))
        node.remove_child(9)
        assert node.num_children == 0
        assert node.find_child(9) is None

    def test_remove_missing_raises(self, cls):
        with pytest.raises(KeyError):
            cls().remove_child(3)

    def test_children_items_sorted(self, cls):
        node = cls()
        for b in (200, 3, 150, 77):
            node.set_child(b, Leaf(bytes([b]), b))
        bytes_out = [b for b, _ in node.children_items()]
        assert bytes_out == sorted(bytes_out) == [3, 77, 150, 200]

    def test_fill_to_capacity(self, cls):
        node = _fill(cls(), cls.CAPACITY)
        assert node.is_full
        assert node.num_children == cls.CAPACITY
        for b in range(cls.CAPACITY):
            assert node.find_child(b).value == b

    def test_prefix_stored(self, cls):
        node = cls(prefix=b"abc")
        assert node.prefix == b"abc"


class TestGrow:
    @pytest.mark.parametrize(
        "cls,target", [(Node4, Node16), (Node16, Node48), (Node48, Node256)]
    )
    def test_grow_preserves_children_and_prefix(self, cls, target):
        node = _fill(cls(prefix=b"pp"), cls.CAPACITY)
        bigger = grown_copy(node)
        assert type(bigger) is target
        assert bigger.prefix == b"pp"
        assert bigger.num_children == cls.CAPACITY
        for b in range(cls.CAPACITY):
            assert bigger.find_child(b).value == b

    def test_node256_cannot_grow(self):
        with pytest.raises(KeyError):
            grown_copy(Node256())


class TestShrink:
    @pytest.mark.parametrize(
        "cls,target,threshold",
        [(Node16, Node4, 4), (Node48, Node16, 16), (Node256, Node48, 48)],
    )
    def test_shrinks_at_threshold(self, cls, target, threshold):
        node = _fill(cls(prefix=b"q"), threshold)
        smaller = maybe_shrunk_copy(node)
        assert type(smaller) is target
        assert smaller.prefix == b"q"
        assert smaller.num_children == threshold

    @pytest.mark.parametrize(
        "cls,threshold", [(Node16, 4), (Node48, 16), (Node256, 48)]
    )
    def test_does_not_shrink_above_threshold(self, cls, threshold):
        node = _fill(cls(), threshold + 1)
        assert maybe_shrunk_copy(node) is node

    def test_node4_never_shrinks(self):
        node = _fill(Node4(), 1)
        assert maybe_shrunk_copy(node) is node


class TestTypeCodes:
    def test_codes(self):
        assert node_type_code(Node4()) == LINK_N4
        assert node_type_code(Node16()) == LINK_N16
        assert node_type_code(Node48()) == LINK_N48
        assert node_type_code(Node256()) == LINK_N256

    def test_leaf_has_no_code(self):
        with pytest.raises(TypeError):
            node_type_code(Leaf(b"k", 0))


class TestNode48Internals:
    def test_slot_reuse_after_remove(self):
        node = Node48()
        for b in range(48):
            node.set_child(b, Leaf(bytes([b]), b))
        node.remove_child(10)
        node.set_child(99, Leaf(b"c", 99))  # must reuse the freed slot
        assert node.num_children == 48
        assert node.find_child(99).value == 99
        assert node.find_child(10) is None
