"""Smoke tests: every shipped example must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))

# mirror the suite's deprecation discipline (pyproject filterwarnings):
# examples fail on any DeprecationWarning, including repro's own (the
# PR 4 shims completed their cycle, so there is no allow-list left)
WARNING_FLAGS = ["-W", "error::DeprecationWarning"]


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, *WARNING_FLAGS, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they do"


def test_example_inventory():
    names = {p.name for p in EXAMPLES}
    # the deliverable set: quickstart + at least three domain scenarios
    assert "quickstart.py" in names
    assert len(names) >= 4
