"""Unit tests for the bench harness plumbing."""

import pytest

from repro.bench.report import FigureResult, format_table
from repro.bench.runner import (
    Scale,
    clear_caches,
    cuart_lookup_log,
    cuart_update_run,
    get_cuart,
    get_grt,
    get_tree,
    grt_lookup_log,
    grt_update_run,
)


class TestScale:
    def test_size_divides(self):
        assert Scale(factor=256).size(1 << 20) == 4096

    def test_size_floor(self):
        assert Scale(factor=256).size(1024) == 256

    def test_hash_slots_power_of_two_preserved(self):
        slots = Scale(factor=256).hash_slots(1 << 20)
        assert slots == 4096
        assert slots & (slots - 1) == 0


class TestWorkloadCache:
    def test_tree_cached(self):
        a = get_tree("random", 512, 8)
        b = get_tree("random", 512, 8)
        assert a is b

    def test_kinds(self):
        assert get_tree("btc", 300, 32).n == 300
        mixed = get_tree("mixed:10", 300, 16)
        long_count = sum(1 for k in mixed.keys if len(k) > 32)
        assert long_count == 30

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            get_tree("nope", 10, 8)

    def test_layouts_built(self):
        layout, table = get_cuart("random", 512, 8, root_k=2)
        assert table is not None and table.k == 2
        grt = get_grt("random", 512, 8)
        assert grt.num_keys == 512

    def test_clear_caches(self):
        a = get_tree("random", 512, 8)
        clear_caches()
        b = get_tree("random", 512, 8)
        assert a is not b


class TestKernelRuns:
    def test_lookup_logs(self):
        cu = cuart_lookup_log("random", 512, 8, 256)
        gr = grt_lookup_log("random", 512, 8, 256)
        assert cu.launched_threads == 256
        assert gr.total_transactions > cu.total_transactions

    def test_update_runs(self):
        res = cuart_update_run("random", 512, 8, 128, 1 << 10)
        assert res.writes > 0
        g = grt_update_run("random", 512, 8, 128)
        assert g.writes > 0


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [(1, 2.5), (100, 0.125)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_figure_result_checks(self):
        r = FigureResult(
            figure="F", title="t", params={}, columns=["x"], rows=[(1,)]
        )
        r.check("yes", True)
        r.check("no", False)
        assert not r.all_checks_pass
        text = str(r)
        assert "[PASS] yes" in text and "[MISS] no" in text

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out
