"""Unit tests for the figure-regeneration CLI."""

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.figures == ["all"]

    def test_scale(self):
        args = build_parser().parse_args(["fig07", "--scale", "128"])
        assert args.scale == 128 and args.figures == ["fig07"]


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "fig18" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_single_figure_runs(self, capsys):
        # fig18 at heavy downscale: fast enough for a unit test
        assert main(["fig18", "--scale", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Figure 18" in out
        assert "PASS" in out
