"""Structural tests for the figure generators (fast, heavily downscaled).

The qualitative *claims* are asserted inside the benchmark suite at the
default scale; at the unit-test scale (1/8192) some claims lose their
regime, so these tests pin the structure: every figure produces rows,
params, a paper claim, and checks — and the cheap figures' checks hold
even here.
"""

import pytest

from repro.bench.figures import ALL_FIGURES, fig13, fig14, fig17, fig18
from repro.bench.report import FigureResult
from repro.bench.runner import Scale

TINY = Scale(factor=8192)

#: figures whose claims are scale-free enough to assert at unit scale.
ROBUST = {"fig13": fig13, "fig14": fig14, "fig17": fig17, "fig18": fig18}


def test_inventory_covers_the_whole_evaluation():
    assert list(ALL_FIGURES) == [f"fig{n:02d}" for n in range(7, 19)]


@pytest.mark.parametrize("name", ["fig13", "fig14", "fig17", "fig18"])
def test_robust_figures_pass_at_tiny_scale(name):
    result = ROBUST[name](TINY)
    assert isinstance(result, FigureResult)
    assert result.rows
    assert result.paper_claim
    assert result.checks
    assert result.all_checks_pass, [d for d, ok in result.checks if not ok]


def test_figure_result_fields_structured():
    r = fig18(TINY)
    assert r.figure == "Figure 18"
    assert len(r.columns) == len(r.rows[0])
    assert "scale" in r.params
