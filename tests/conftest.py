"""Shared fixtures: small reproducible trees and query batches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.art.tree import AdaptiveRadixTree
from repro.cuart.layout import CuartLayout
from repro.util.keys import encode_int, keys_to_matrix


def int_keys(values, width=8):
    return [encode_int(int(v), width) for v in values]


def make_tree(pairs) -> AdaptiveRadixTree:
    t = AdaptiveRadixTree()
    for k, v in pairs:
        t.insert(k, v)
    return t


@pytest.fixture(scope="module")
def medium_keys():
    """2000 distinct pseudo-random 8-byte keys."""
    rng = np.random.default_rng(42)
    vals = np.unique(rng.integers(1, 2**63 - 1, size=2600, dtype=np.int64))[:2000]
    return int_keys(vals)


@pytest.fixture(scope="module")
def medium_tree(medium_keys):
    return make_tree((k, i) for i, k in enumerate(medium_keys))


@pytest.fixture()
def medium_layout(medium_tree):
    return CuartLayout(medium_tree)


def batch_of(keys, width=None):
    return keys_to_matrix(list(keys), width=width)
