"""scripts/bench_diff.py stage-attribution tests, including the
acceptance criterion: diffing the committed BENCH_pr5 / BENCH_pr6 pair
must attribute the dedup-table transaction drop to the kernel /
hash-table stage."""

import importlib.util
import json
import pathlib

import pytest

_SCRIPTS = pathlib.Path(__file__).resolve().parents[2] / "scripts"
_REPO = _SCRIPTS.parent


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name.replace(".py", ""), _SCRIPTS / name
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


bd = _load("bench_diff.py")


def _bench(name):
    return json.loads((_REPO / name).read_text())


class TestCommittedPairs:
    def test_pr5_pr6_attributes_hashtable_drop(self):
        """The known PR 6 change — the bucketed conflict table cutting
        dedup-table transactions ~5x — must surface as a kernel /
        hash-table stage finding."""
        diff = bd.diff_docs(_bench("BENCH_pr5.json"),
                            _bench("BENCH_pr6.json"))
        ht = [f for f in diff["findings"]
              if f["stage"] == "kernel/hash-table"]
        assert ht, f"no kernel/hash-table finding in {diff['findings']}"
        f = ht[0]
        assert f["op"] == "update_high_conflict"
        assert f["severity"] == "improvement"
        assert "5.04" in f["summary"] or "transactions" in f["summary"]

    def test_pr5_pr6_reverse_is_regression(self):
        diff = bd.diff_docs(_bench("BENCH_pr6.json"),
                            _bench("BENCH_pr5.json"))
        ht = [f for f in diff["findings"]
              if f["stage"] == "kernel/hash-table"]
        assert ht and ht[0]["severity"] == "regression"

    def test_pr7_pr8_quiet(self):
        """An additive-only PR must produce no regressed ops."""
        diff = bd.diff_docs(_bench("BENCH_pr7.json"),
                            _bench("BENCH_pr8.json"))
        assert diff["regressed_ops"] == []


class TestDiffMechanics:
    def _doc(self, mixed_wall=0.1, **mixed_extra):
        return {
            "meta": {"label": "t"},
            "ops": {
                "mixed": {"wall_s": mixed_wall, "keys_per_sec": 1000.0,
                          "n": 100, **mixed_extra},
            },
            "headline": {},
        }

    def test_threshold_splits_verdicts(self):
        base, cand = self._doc(0.100), self._doc(0.120)
        diff = bd.diff_docs(base, cand, threshold=0.05)
        (row,) = [r for r in diff["ops"] if r["op"] == "mixed"]
        assert row["verdict"] == "slower"
        assert diff["regressed_ops"] == ["mixed"]
        assert bd.diff_docs(base, cand, threshold=0.5)["regressed_ops"] == []

    def test_op_only_in_one_side_reported(self):
        base = self._doc()
        cand = self._doc()
        cand["ops"]["scan"] = {"wall_s": 0.2, "keys_per_sec": 1.0, "n": 2}
        rows = {r["op"]: r for r in bd.diff_docs(base, cand)["ops"]}
        assert rows["scan"]["verdict"] == "new"

    def test_critical_path_stage_shift_found(self):
        cp_base = {"bottleneck": "kernel",
                   "stage_s": {"h2d": 0.1, "kernel": 0.5, "d2h": 0.1}}
        cp_cand = {"bottleneck": "h2d",
                   "stage_s": {"h2d": 0.6, "kernel": 0.5, "d2h": 0.1}}
        base = self._doc(critical_path=cp_base,
                         stream_overlap={"makespan_s": 0.7})
        cand = self._doc(critical_path=cp_cand,
                         stream_overlap={"makespan_s": 1.2})
        diff = bd.diff_docs(base, cand)
        stages = {f["stage"] for f in diff["findings"]}
        assert "pcie-h2d" in stages
        assert any("bottleneck" in f["summary"] for f in diff["findings"])

    def test_render_text_smoke(self):
        out = bd.render_text(
            bd.diff_docs(_bench("BENCH_pr5.json"), _bench("BENCH_pr6.json"))
        )
        assert "stage attribution" in out
        assert "update_high_conflict" in out

    def test_cli_exit_codes(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(self._doc(0.1)))
        b.write_text(json.dumps(self._doc(0.5)))
        assert bd.main([str(a), str(b)]) == 0
        assert bd.main([str(a), str(b), "--fail-on-regression"]) == 1
        out = capsys.readouterr().out
        assert "slower" in out

    def test_cli_json_output(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(self._doc(0.1)))
        assert bd.main([str(a), str(a), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["regressed_ops"] == []


class TestValidateBenchHook:
    def test_failure_path_prints_attribution(self, capsys):
        """validate_bench --baseline failure must print the bench_diff
        attribution table before the INVALID verdict."""
        vb = _load("validate_bench.py")
        rc = vb.main([
            str(_REPO / "BENCH_pr5.json"),
            "--baseline", str(_REPO / "BENCH_pr6.json"),
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "stage attribution" in err
        assert "kernel/hash-table" in err
