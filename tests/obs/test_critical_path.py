"""Critical-path attribution tests: the backtracking walk must charge
stage intervals that partition [0, makespan] exactly, for kernel-bound,
transfer-bound, serial and sharded timelines."""

import pytest

from repro.gpusim.streams import StreamOverlapStats, StreamScheduler
from repro.obs.critical_path import (
    attribute_stats,
    attribute_window,
    stage_breakdown,
)


def _run(n, *, streams=2, h2d=1.0, kernel=3.0, d2h=0.5, op="lookup"):
    sched = StreamScheduler(streams)
    for _ in range(n):
        sched.submit(op, h2d_s=h2d, kernel_s=kernel, d2h_s=d2h)
    return sched.drain()


def _reconciles(attr, makespan):
    assert attr.total_stage_s == pytest.approx(makespan, rel=1e-9), (
        f"stages {attr.stage_s} sum to {attr.total_stage_s}, "
        f"makespan {makespan}"
    )


class TestAttributeWindow:
    def test_empty_window(self):
        attr = attribute_window([], 2)
        assert attr.makespan_s == 0.0
        assert attr.stage_s == {} and attr.bottleneck == "idle"

    def test_kernel_bound_window(self):
        """kernel > h2d: after the first staging the compute engine
        never goes idle, so the path is h2d + n*kernel + d2h."""
        stats = _run(5, h2d=1.0, kernel=3.0, d2h=0.5)
        attr = attribute_window(stats.events, 2)
        _reconciles(attr, stats.makespan_s)
        assert attr.bottleneck == "kernel"
        assert attr.stage_s["kernel"] == pytest.approx(15.0)
        assert attr.stage_s["h2d"] == pytest.approx(1.0)
        assert attr.stage_s["d2h"] == pytest.approx(0.5)

    def test_transfer_bound_window(self):
        """h2d > kernel: the copy engine bounds progress, so the path
        is n*h2d + the final kernel + final d2h."""
        stats = _run(5, h2d=3.0, kernel=1.0, d2h=0.0)
        attr = attribute_window(stats.events, 2)
        _reconciles(attr, stats.makespan_s)
        assert attr.bottleneck == "h2d"
        assert attr.stage_s["h2d"] == pytest.approx(15.0)
        assert attr.stage_s["kernel"] == pytest.approx(1.0)

    def test_single_stream_serial_chain(self):
        """n_streams=1 degenerates to the full serial sum: every stage
        of every batch is on the critical path."""
        stats = _run(4, streams=1, h2d=1.0, kernel=3.0, d2h=0.5)
        attr = attribute_window(stats.events, 1)
        _reconciles(attr, stats.makespan_s)
        assert attr.stage_s["h2d"] == pytest.approx(4 * 1.0)
        assert attr.stage_s["kernel"] == pytest.approx(4 * 3.0)
        assert attr.stage_s["d2h"] == pytest.approx(4 * 0.5)

    def test_buffer_reuse_charges_older_d2h(self):
        """Big d2h + few buffers: staging of batch i waits on batch
        i - n_streams' return DMA, so d2h lands on the critical path
        beyond just the final event's tail."""
        stats = _run(6, streams=2, h2d=0.1, kernel=0.2, d2h=5.0)
        attr = attribute_window(stats.events, 2)
        _reconciles(attr, stats.makespan_s)
        assert attr.bottleneck == "d2h"
        assert attr.stage_s["d2h"] > 5.0  # more than one event's DMA

    def test_by_op_partitions_stage_totals(self):
        sched = StreamScheduler(2)
        for i in range(6):
            sched.submit("lookup" if i % 2 else "update",
                         h2d_s=1.0, kernel_s=2.0, d2h_s=0.1)
        stats = sched.drain()
        attr = attribute_window(stats.events, 2)
        _reconciles(attr, stats.makespan_s)
        for stage, total in attr.stage_s.items():
            by_op = sum(
                st.get(stage, 0.0) for st in attr.by_op.values()
            )
            assert by_op == pytest.approx(total)

    def test_random_timelines_always_reconcile(self):
        """Property: any timeline's stage intervals partition the
        makespan — over random stage times and stream counts."""
        import random

        rng = random.Random(42)
        for _ in range(50):
            streams = rng.choice([1, 2, 3, 8])
            sched = StreamScheduler(streams)
            for _ in range(rng.randint(1, 20)):
                sched.submit(
                    rng.choice(["lookup", "update", "delete"]),
                    h2d_s=rng.uniform(0.01, 5.0),
                    kernel_s=rng.uniform(0.01, 5.0),
                    d2h_s=rng.uniform(0.0, 5.0),
                )
            stats = sched.drain()
            attr = attribute_window(stats.events, streams)
            _reconciles(attr, stats.makespan_s)


class TestAttributeStats:
    def test_sequential_windows_sum(self):
        sched = StreamScheduler(2)
        for _ in range(3):
            sched.submit("lookup", h2d_s=1.0, kernel_s=3.0, d2h_s=0.5)
        a = sched.drain()
        for _ in range(2):
            sched.submit("update", h2d_s=1.0, kernel_s=3.0, d2h_s=0.5)
        a.add_window(sched.drain())
        rep = attribute_stats(a)
        assert len(rep.windows) == 2
        assert rep.total_stage_s == pytest.approx(a.makespan_s, rel=1e-9)
        assert rep.bottleneck == "kernel"
        # the op split survives the fold
        assert "lookup" in rep.by_op and "update" in rep.by_op

    def test_empty_stats(self):
        rep = attribute_stats(StreamOverlapStats())
        assert rep.bottleneck == "idle"
        assert rep.stage_s == {} and rep.windows == []

    def test_sharded_skew_attribution(self):
        """Parallel fold: the slowest shard's chain is the critical
        path; faster shards contribute their idle gap as shard-skew."""
        fast = _run(2, kernel=1.0)
        slow = _run(6, kernel=2.0)
        slow_span = slow.makespan_s
        merged = fast
        merged.merge_parallel(slow)
        rep = attribute_stats(merged)
        assert rep.makespan_s == pytest.approx(slow_span)
        # the slowest shard's stages reconcile with the merged makespan
        assert rep.total_stage_s == pytest.approx(slow_span, rel=1e-9)
        assert rep.shard_skew_s == pytest.approx(
            slow_span - _run(2, kernel=1.0).makespan_s
        )
        assert rep.stage_s["shard-skew"] == pytest.approx(rep.shard_skew_s)
        assert len(rep.shards) == 2
        skews = {s["shard"]: s["skew_s"] for s in rep.shards}
        assert skews[1] == 0.0 and skews[0] > 0.0

    def test_balanced_shards_no_skew(self):
        a, b = _run(4), _run(4)
        a.merge_parallel(b)
        rep = attribute_stats(a)
        assert rep.shard_skew_s == pytest.approx(0.0)
        assert "shard-skew" not in rep.stage_s

    def test_as_dict_json_shape(self):
        import json

        a, b = _run(2), _run(3)
        a.merge_parallel(b)
        doc = attribute_stats(a).as_dict()
        json.dumps(doc)
        assert {"makespan_s", "bottleneck", "stage_s", "by_op",
                "windows", "shards", "shard_skew_s"} <= set(doc)


class TestStageBreakdown:
    def test_per_op_rows(self):
        sched = StreamScheduler(2)
        for i in range(4):
            sched.submit("lookup" if i % 2 else "update",
                         h2d_s=1.0, kernel_s=2.0, d2h_s=0.5)
        table = stage_breakdown(sched.drain())
        assert set(table) == {"lookup", "update"}
        for row in table.values():
            assert row["batches"] == 2
            assert row["h2d_s"] == pytest.approx(2.0)
            assert row["kernel_s"] == pytest.approx(4.0)

    def test_flight_summary_columns(self):
        stats = _run(3)
        table = stage_breakdown(stats, flight_summary={
            "by_op": {"lookup": {
                "queue_wait_us_sum": 12.5, "queue_wait_us_max": 7.0,
                "count": 40, "forwarded": 3,
            }},
        })
        row = table["lookup"]
        assert row["queue_wait_us_sum"] == 12.5
        assert row["sampled_ops"] == 40 and row["forwarded"] == 3

    def test_sharded_breakdown_covers_all_parts(self):
        a, b = _run(2), _run(3)
        a.merge_parallel(b)
        table = stage_breakdown(a)
        assert table["lookup"]["batches"] == 5
