"""Registry + metric-type unit tests (repro.obs.metrics)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    LATENCY_US_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "ops")
        c.inc()
        c.inc(5)
        assert reg.value("ops_total") == 6

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("x_total", "x")
        with pytest.raises(ReproError):
            c.inc(-1)

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        fam = reg.counter("q_total", "q", labels=("op",))
        fam.labels(op="lookup").inc(3)
        fam.labels(op="update").inc(4)
        assert reg.value("q_total", op="lookup") == 3
        assert reg.value("q_total", op="update") == 4

    def test_label_child_cached(self):
        fam = MetricsRegistry().counter("q_total", "q", labels=("op",))
        assert fam.labels(op="a") is fam.labels(op="a")

    def test_unknown_label_name_rejected(self):
        fam = MetricsRegistry().counter("q_total", "q", labels=("op",))
        with pytest.raises(ReproError):
            fam.labels(kind="a")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "d")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert reg.value("depth") == 7


class TestRegistry:
    def test_registration_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("c_total", "c")
        b = reg.counter("c_total", "c")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", "m")
        with pytest.raises(ReproError):
            reg.gauge("m", "m")

    def test_label_schema_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m_total", "m", labels=("op",))
        with pytest.raises(ReproError):
            reg.counter("m_total", "m", labels=("kind",))

    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "c").inc(2)
        reg.gauge("g", "g").set(1.5)
        reg.histogram("h_us", "h").observe(10.0)
        snap = reg.snapshot()
        assert snap["counters"]["c_total"] == 2
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h_us"]["count"] == 1

    def test_snapshot_labelled_series(self):
        reg = MetricsRegistry()
        fam = reg.counter("c_total", "c", labels=("op",))
        fam.labels(op="a").inc(1)
        fam.labels(op="b").inc(2)
        snap = reg.snapshot()
        assert snap["counters"]["c_total"] == {"op=a": 1, "op=b": 2}


class TestHistogram:
    def test_rejects_nan(self):
        h = MetricsRegistry().histogram("h_us", "h")
        with pytest.raises(ReproError):
            h.observe(float("nan"))

    def test_weighted_observation(self):
        h = MetricsRegistry().histogram("h_us", "h")
        h.observe(5.0, 100)
        s = h.summary()
        assert s["count"] == 100
        assert s["mean"] == pytest.approx(5.0)

    def test_summary_empty(self):
        s = MetricsRegistry().histogram("h_us", "h").summary()
        assert s["count"] == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_percentiles_track_numpy(self, seed):
        """Bucket-interpolated quantiles stay within ~5% relative error
        of exact numpy quantiles for a lognormal latency-like sample."""
        rng = np.random.default_rng(seed)
        sample = rng.lognormal(mean=3.0, sigma=1.0, size=20_000)
        h = Histogram(LATENCY_US_BUCKETS)
        for v in sample:
            h.observe(float(v))
        for q in (0.50, 0.95, 0.99):
            exact = float(np.quantile(sample, q))
            est = h.quantile(q)
            assert est == pytest.approx(exact, rel=0.08), (
                f"q={q}: est {est} vs exact {exact}"
            )

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram(LATENCY_US_BUCKETS)
        h.observe(42.0)
        assert h.quantile(0.0) >= 42.0 - 1e-9
        assert h.quantile(1.0) <= 42.0 + 1e-9

    def test_bucket_counts(self):
        h = Histogram((1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert list(h.bucket_counts) == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
