"""Tracer unit tests: span recording, nesting containment, and the
allocation-free disabled path."""

import time
import tracemalloc

from repro.obs import tracing as tr
from repro.obs.tracing import GPU_TRACK, HOST_TRACK, NULL_TRACER, Tracer


def test_span_records_complete_event():
    t = Tracer()
    with t.span("outer", {"n": 3}):
        pass
    (ev,) = t.events
    assert ev["name"] == "outer"
    assert ev["ph"] == "X"
    assert ev["tid"] == HOST_TRACK
    assert ev["dur"] >= 0
    assert ev["args"] == {"n": 3}


def test_nested_spans_time_contained():
    """Nesting is derived from time containment: an inner span's
    [ts, ts+dur] interval must lie within its enclosing span's."""
    t = Tracer()
    with t.span("outer"):
        with t.span("inner"):
            time.sleep(0.001)
    inner = next(e for e in t.events if e["name"] == "inner")
    outer = next(e for e in t.events if e["name"] == "outer")
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    # complete events are appended on close: inner closes first
    assert t.events.index(inner) < t.events.index(outer)


def test_emit_simulated_lands_on_gpu_track_inside_host_span():
    t = Tracer()
    with t.span("engine.update"):
        t.emit_simulated("sim:update", 0.5, {"bound": "latency"})
    sim = next(e for e in t.events if e["name"] == "sim:update")
    host = next(e for e in t.events if e["name"] == "engine.update")
    assert sim["tid"] == GPU_TRACK
    assert sim["dur"] == 0.5 * 1e6  # simulated seconds -> trace us
    assert host["ts"] <= sim["ts"] <= host["ts"] + host["dur"]


def test_instant_marker():
    t = Tracer()
    t.instant("flush", {"reason": "drain"})
    (ev,) = t.events
    assert ev["ph"] == "i"
    assert ev["args"] == {"reason": "drain"}


def test_clear():
    t = Tracer()
    with t.span("x"):
        pass
    t.clear()
    assert t.events == []


class TestSubtrack:
    """TracerView: per-shard tracks sharing one root event list."""

    def test_view_writes_to_own_named_tracks(self):
        t = Tracer()
        v = t.subtrack("shard0", {"shard": 0})
        with v.span("mixed.lookup", {"n": 4}):
            pass
        (ev,) = t.events  # the view appends to the root's list
        assert ev["tid"] == v.host_tid != HOST_TRACK
        assert t.track_names[v.host_tid] == "shard0/host"
        assert t.track_names[v.gpu_tid] == "shard0/gpu-sim"
        # view args are stamped onto every event
        assert ev["args"] == {"shard": 0, "n": 4}

    def test_simulated_events_carry_shard_args(self):
        t = Tracer()
        v = t.subtrack("shard1", {"shard": 1})
        v.emit_simulated("sim:update", 0.25)
        (ev,) = t.events
        assert ev["tid"] == v.gpu_tid
        assert ev["args"]["shard"] == 1

    def test_same_label_reuses_tracks(self):
        """Successive engines asking for the same shard label must not
        pile up duplicate identically-named tracks."""
        t = Tracer()
        a = t.subtrack("shard0")
        b = t.subtrack("shard0")
        assert a.host_tid == b.host_tid
        assert a.gpu_tid == b.gpu_tid
        names = list(t.track_names.values())
        assert names.count("shard0/host") == 1

    def test_nested_subtrack_composes_label(self):
        t = Tracer()
        inner = t.subtrack("shard2", {"shard": 2}).subtrack("reb")
        assert t.track_names[inner.host_tid] == "shard2/reb/host"
        inner.instant("moved", {"n": 3})
        (ev,) = t.events
        assert ev["args"] == {"shard": 2, "n": 3}

    def test_plain_tracer_tracks_unchanged(self):
        """Without subtrack calls the default two tracks stay alone —
        the exported chrome trace is byte-identical to pre-view code
        (pinned exactly in tests/obs/test_export.py)."""
        t = Tracer()
        with t.span("x"):
            pass
        assert t.track_names == {HOST_TRACK: "host", GPU_TRACK: "gpu-sim"}

    def test_null_tracer_subtrack_is_self(self):
        assert NULL_TRACER.subtrack("shard0") is NULL_TRACER


def test_null_tracer_is_disabled_and_shares_one_span():
    assert NULL_TRACER.enabled is False
    s1 = NULL_TRACER.span("a", {"n": 1})
    s2 = NULL_TRACER.span("b")
    assert s1 is s2  # one shared no-op context manager
    with s1:
        pass
    NULL_TRACER.emit_simulated("sim:x", 1.0)
    NULL_TRACER.instant("x")
    assert NULL_TRACER.events == []


def test_null_tracer_hot_path_allocates_nothing():
    """The disabled path must be allocation-free: entering/exiting spans
    through NULL_TRACER allocates zero bytes inside the tracing module."""
    span = NULL_TRACER.span  # hoisted like the engines do

    def hot_loop():
        for _ in range(10_000):
            with span("engine.lookup"):
                pass

    hot_loop()  # warm up (method caches, bytecode specialization)
    tracemalloc.start()
    try:
        hot_loop()
        snap = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snap.filter_traces(
        [tracemalloc.Filter(True, tr.__file__)]
    ).statistics("lineno")
    allocated = sum(s.size for s in stats)
    assert allocated == 0, f"null tracer allocated {allocated} bytes: {stats}"
