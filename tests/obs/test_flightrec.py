"""Flight recorder tests: record lifecycle through a real mixed-stream
run, sampling, the bounded ring, black-box dump triggers, and the
allocation-free disabled path (the NULL_TRACER pattern)."""

import json
import tracemalloc

import pytest

from repro.host.config import EngineConfig
from repro.host.engine import CuartEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.obs import flightrec as fr
from repro.obs.flightrec import (
    NULL_FLIGHT_RECORDER,
    FlightRecord,
    FlightRecorder,
)
from repro.workloads import QueryMix, mixed_queries, random_keys


def _engine(recorder, *, n=600, batch_size=256):
    keys = random_keys(n, 8, seed=71)
    eng = CuartEngine(
        config=EngineConfig(batch_size=batch_size, spare=0.25,
                            flight_recorder=recorder),
    )
    eng.populate((k, i) for i, k in enumerate(keys))
    eng.map_to_device()
    return eng, keys


class TestRecordLifecycle:
    def test_mixed_stream_stamps_every_stage(self):
        rec = FlightRecorder(capacity=4096)
        eng, keys = _engine(rec)
        stream = mixed_queries(keys, 400, QueryMix(), seed=3)
        MixedWorkloadExecutor(eng).run(stream)

        assert rec.ops_seen == 400
        assert rec.ops_recorded == 400
        assert len(rec.records) == 400
        ops = {r.op for r in rec.records}
        assert "lookup" in ops and "update" in ops
        for r in rec.records:
            assert r.status != "PENDING"
            assert r.t_complete_us >= r.t_dispatch_us >= r.t_enqueue_us
            assert r.host_latency_us >= r.queue_wait_us
            if not r.forwarded:
                # device-dispatched ops attach to a batch and carry the
                # simulated stage times of its StreamEvent
                assert r.batch_id >= 0, "record never attached to a batch"
                assert r.queue_pos >= 0
                assert r.sim_kernel_us > 0
                assert r.sim_h2d_us > 0
            else:
                # overlay-answered ops never reach the device
                assert r.batch_id == -1
                assert r.sim_kernel_us == 0.0

    def test_forwarded_ops_marked(self):
        """A lookup answered by store-to-load forwarding (same-key
        update still queued) never reaches the device."""
        rec = FlightRecorder()
        eng, keys = _engine(rec)
        stream = [("update", (keys[0], 123)), ("lookup", keys[0])]
        results, _ = MixedWorkloadExecutor(eng).run(stream)
        assert results == [123]
        fwd = [r for r in rec.records if r.forwarded]
        assert len(fwd) == 1
        assert fwd[0].op == "lookup" and fwd[0].status == "OK"

    def test_statuses_from_batch_result(self):
        rec = FlightRecorder()
        eng, keys = _engine(rec)
        absent = b"\xff" * 8
        assert absent not in keys
        stream = [("lookup", keys[0]), ("lookup", absent)]
        MixedWorkloadExecutor(eng).run(stream)
        by_status = {r.status for r in rec.records}
        assert by_status == {"OK", "NOT_FOUND"}

    def test_key_hash_stable_across_recorders(self):
        a = FlightRecorder().begin("lookup", "key-a")
        b = FlightRecorder().begin("lookup", "key-a")
        c = FlightRecorder().begin("lookup", "key-b")
        assert a.key_hash == b.key_hash != c.key_hash

    def test_summary_aggregates(self):
        rec = FlightRecorder()
        eng, keys = _engine(rec)
        MixedWorkloadExecutor(eng).run(
            mixed_queries(keys, 200, QueryMix(), seed=5)
        )
        s = rec.summary()
        assert s["ops_seen"] == 200
        assert sum(d["count"] for d in s["by_op"].values()) == 200
        lk = s["by_op"]["lookup"]
        assert lk["host_latency_us_max"] >= lk["queue_wait_us_max"]
        assert sum(lk["statuses"].values()) == lk["count"]


class TestSamplingAndRing:
    def test_sample_every_keeps_every_nth(self):
        rec = FlightRecorder(sample_every=4)
        eng, keys = _engine(rec)
        MixedWorkloadExecutor(eng).run(
            mixed_queries(keys, 400, QueryMix(), seed=3)
        )
        assert rec.ops_seen == 400
        assert rec.ops_recorded == 100
        # sampled device-dispatched records still complete in full
        assert all(
            r.batch_id >= 0 for r in rec.records if not r.forwarded
        )

    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=64)
        eng, keys = _engine(rec)
        MixedWorkloadExecutor(eng).run(
            mixed_queries(keys, 400, QueryMix(), seed=3)
        )
        assert rec.ops_recorded == 400
        assert len(rec.records) == 64  # newest 64 survive

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(sample_every=0)


class TestDumpTriggers:
    def test_fault_burst_dump(self):
        rec = FlightRecorder(fault_burst=3, fault_window=100)
        for _ in range(10):
            rec.begin("update", "k")
        for _ in range(3):
            rec.note_fault("update", "retry")
        assert len(rec.dumps) == 1
        assert rec.dumps[0]["trigger"] == "fault-burst"
        assert rec.dumps[0]["context"]["last_kind"] == "retry"

    def test_fault_burst_needs_window_density(self):
        """Faults spread wider than fault_window ops never trigger."""
        rec = FlightRecorder(fault_burst=2, fault_window=5)
        for _ in range(3):
            rec.note_fault("update", "retry")
            for _ in range(10):  # advance the op clock past the window
                rec.begin("update", "k")
        assert rec.dumps == []

    def test_dump_cooldown(self):
        """A sustained burst yields one dump per fault_window ops, not
        one per fault."""
        rec = FlightRecorder(fault_burst=2, fault_window=50)
        for _ in range(10):
            rec.note_fault("update", "retry")
        assert len(rec.dumps) == 1

    def test_p99_breach_dump(self):
        clock = iter(range(0, 10**9, 10**6))  # 1ms per tick
        rec = FlightRecorder(p99_threshold_us=500.0,
                             clock=lambda: next(clock))
        recs = []
        for _ in range(40):
            r = rec.begin("lookup", "k")
            recs.append(r)
        # each completion lands >= 1ms after its enqueue: p99 breaches
        rec.complete(recs, batch_id=0, t_dispatch_us=rec.now_us())
        assert rec.dumps and rec.dumps[0]["trigger"] == "p99-breach"
        assert rec.dumps[0]["context"]["p99_us"] > 500.0

    def test_dump_written_to_path(self, tmp_path):
        p = tmp_path / "flight.json"
        rec = FlightRecorder(dump_path=str(p))
        r = rec.begin("lookup", "k")
        rec.complete([r], batch_id=0, t_dispatch_us=rec.now_us())
        rec.dump("manual", {"why": "test"})
        doc = json.loads(p.read_text())
        assert doc["trigger"] == "manual"
        assert len(doc["records"]) == 1
        # a second dump must not clobber the first
        rec.dump("manual", {})
        assert (tmp_path / "flight.2.json").exists()

    def test_record_as_dict_roundtrips_json(self):
        r = FlightRecord("lookup", 42, 1, 0.0)
        r.note(1.0, "retry", "lookup")
        json.dumps(r.as_dict())  # must be JSON-able as-is


class TestDisabledPath:
    def test_null_singleton_constant_returns(self):
        n = NULL_FLIGHT_RECORDER
        assert n.enabled is False
        assert n.begin("lookup", "k") is None
        assert n.note_fault("lookup", "retry") is None
        assert n.complete([], batch_id=0, t_dispatch_us=0.0) is None
        assert n.complete_forwarded(None, True) is None
        assert n.summary() == {} and n.snapshot() == {} and n.dump() == {}

    def test_engine_defaults_to_null(self):
        eng = CuartEngine(batch_size=256)
        assert eng.flight is NULL_FLIGHT_RECORDER

    def test_disabled_recorder_allocates_nothing(self):
        """tests/obs/test_tracing.py's zero-alloc check, extended to the
        flight recorder: with recording off the hot-path methods must
        not allocate a single byte inside the flightrec module."""
        begin = NULL_FLIGHT_RECORDER.begin
        note = NULL_FLIGHT_RECORDER.note_fault

        def hot_loop():
            for _ in range(10_000):
                begin("lookup", "key")
                note("lookup", "retry")

        hot_loop()  # warm up (method caches, bytecode specialization)
        tracemalloc.start()
        try:
            hot_loop()
            snap = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = snap.filter_traces(
            [tracemalloc.Filter(True, fr.__file__)]
        ).statistics("lineno")
        allocated = sum(s.size for s in stats)
        assert allocated == 0, \
            f"null flight recorder allocated {allocated} bytes: {stats}"
