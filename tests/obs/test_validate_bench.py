"""scripts/validate_bench.py schema checks."""

import importlib.util
import json
import math
import pathlib

_SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2]
    / "scripts" / "validate_bench.py"
)
_spec = importlib.util.spec_from_file_location("validate_bench", _SCRIPT)
vb = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(vb)


def _minimal_doc() -> dict:
    op = {"wall_s": 0.1, "keys_per_sec": 1000.0, "n": 100}
    return {
        "meta": {"label": "t", "n_keys": 100, "batch_size": 8, "seed": 7},
        "ops": {
            "populate": dict(op),
            "lookup_uniform": dict(op),
            "lookup_zipf": dict(op),
            "update": dict(op),
            "mixed": {
                **op,
                "latency_percentiles_by_op": {
                    "lookup": {"count": 10, "mean": 1.0, "p50": 1.0,
                               "p95": 2.0, "p99": 3.0},
                },
                "flush_reasons": {"size-full": 1, "write-dependency": 2,
                                  "drain": 1},
                "ops_by_status": {"OK": 90, "NOT_FOUND": 10},
            },
        },
        "headline": {"populate_plus_lookup_wall_s": 0.2},
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }


def test_valid_doc_passes():
    assert vb.validate(_minimal_doc()) == []


def test_committed_bench_passes():
    bench = _SCRIPT.parents[1] / "BENCH_pr4.json"
    assert vb.validate(json.loads(bench.read_text())) == []


def test_missing_percentiles_flagged():
    doc = _minimal_doc()
    del doc["ops"]["mixed"]["latency_percentiles_by_op"]
    assert any("latency_percentiles_by_op" in p for p in vb.validate(doc))


def test_missing_p99_flagged():
    doc = _minimal_doc()
    del doc["ops"]["mixed"]["latency_percentiles_by_op"]["lookup"]["p99"]
    assert any(".p99" in p for p in vb.validate(doc))


def test_nan_flagged_anywhere():
    doc = _minimal_doc()
    doc["metrics"]["gauges"]["g"] = math.nan
    assert any("non-finite" in p for p in vb.validate(doc))


def test_missing_metrics_snapshot_flagged():
    doc = _minimal_doc()
    del doc["metrics"]
    assert any("metrics" in p for p in vb.validate(doc))


def test_missing_flush_reason_flagged():
    doc = _minimal_doc()
    del doc["ops"]["mixed"]["flush_reasons"]["drain"]
    assert any("drain" in p for p in vb.validate(doc))


def test_missing_ops_by_status_flagged():
    doc = _minimal_doc()
    del doc["ops"]["mixed"]["ops_by_status"]
    assert any("ops_by_status" in p for p in vb.validate(doc))


def test_failed_ops_flagged():
    doc = _minimal_doc()
    doc["ops"]["mixed"]["ops_by_status"] = {"OK": 95, "FAILED": 5}
    assert any("FAILED" in p for p in vb.validate(doc))


def test_unknown_status_flagged():
    doc = _minimal_doc()
    doc["ops"]["mixed"]["ops_by_status"] = {"OK": 99, "BOGUS": 1}
    assert any("BOGUS" in p for p in vb.validate(doc))


def test_status_sum_mismatch_flagged():
    doc = _minimal_doc()
    doc["ops"]["mixed"]["ops_by_status"] = {"OK": 1}
    assert any("sums to" in p for p in vb.validate(doc))


def _sharded_record() -> dict:
    dev = {"mixed_sim_mops": 100.0, "update_sim_mops": 100.0}
    return {
        "wall_s": 1.0, "keys_per_sec": 1000.0, "n": 1000,
        "devices": {
            "1": dict(dev),
            "4": {"mixed_sim_mops": 340.0, "update_sim_mops": 350.0},
        },
        "scaling": {"mixed_x4": 3.4, "update_x4": 3.5,
                    "mixed_x8": 4.1, "update_x8": 5.8},
        "lockstep": {"device_counts": [1, 2, 4, 8], "ok": True},
        "rebalance": {"recovery_vs_uniform": 1.04,
                      "imbalance_before": 3.4, "imbalance_after": 1.0},
    }


class TestShardedSchema:
    def test_valid_sharded_record_passes(self):
        doc = _minimal_doc()
        doc["ops"]["mixed_sharded"] = _sharded_record()
        assert vb.validate(doc) == []

    def test_missing_scaling_flagged(self):
        doc = _minimal_doc()
        doc["ops"]["mixed_sharded"] = _sharded_record()
        del doc["ops"]["mixed_sharded"]["scaling"]
        assert any("mixed_sharded.scaling" in p for p in vb.validate(doc))

    def test_lockstep_false_flagged(self):
        doc = _minimal_doc()
        doc["ops"]["mixed_sharded"] = _sharded_record()
        doc["ops"]["mixed_sharded"]["lockstep"]["ok"] = False
        assert any("lockstep" in p for p in vb.validate(doc))

    def test_missing_rebalance_recovery_flagged(self):
        doc = _minimal_doc()
        doc["ops"]["mixed_sharded"] = _sharded_record()
        del doc["ops"]["mixed_sharded"]["rebalance"]["recovery_vs_uniform"]
        assert any("recovery_vs_uniform" in p for p in vb.validate(doc))


def _write_burst_record() -> dict:
    def lat(p99):
        return {"count": 100, "mean_us": 1.0, "p50_us": 0.0,
                "p99_us": p99, "max_us": p99}
    return {
        "wall_s": 1.0, "pattern": "bursty", "qps": 400_000,
        "sync": {"makespan_s": 0.04, "write_ops_per_sec": 350_000.0,
                 "write_latency": lat(250.0)},
        "memtable": {"makespan_s": 0.04, "write_ops_per_sec": 350_000.0,
                     "write_latency": lat(0.0),
                     "absorbed_write_ratio": 0.85, "compactions": 2},
        "speedup": {"write_tput_x": 1.0, "write_p99_drop_x": 25_000.0},
    }


class TestWriteBurstSchema:
    def test_valid_write_burst_record_passes(self):
        doc = _minimal_doc()
        doc["ops"]["write_burst"] = _write_burst_record()
        assert vb.validate(doc) == []

    def test_missing_pass_flagged(self):
        doc = _minimal_doc()
        doc["ops"]["write_burst"] = _write_burst_record()
        del doc["ops"]["write_burst"]["memtable"]
        assert any("write_burst.memtable" in p for p in vb.validate(doc))

    def test_absorbed_ratio_out_of_range_flagged(self):
        doc = _minimal_doc()
        doc["ops"]["write_burst"] = _write_burst_record()
        doc["ops"]["write_burst"]["memtable"]["absorbed_write_ratio"] = 1.7
        assert any("absorbed_write_ratio" in p for p in vb.validate(doc))

    def test_missing_speedup_flagged(self):
        doc = _minimal_doc()
        doc["ops"]["write_burst"] = _write_burst_record()
        del doc["ops"]["write_burst"]["speedup"]
        assert any("speedup" in p for p in vb.validate(doc))


class TestRegressionGate:
    def test_within_limit_passes(self):
        base, cur = _minimal_doc(), _minimal_doc()
        cur["ops"]["mixed"]["flush_reasons"]["write-dependency"] = 0
        cur["ops"]["lookup_zipf"]["wall_s"] = 0.105  # +5% < 10%
        assert vb.compare(cur, base) == []

    def test_slow_op_flagged(self):
        base, cur = _minimal_doc(), _minimal_doc()
        cur["ops"]["mixed"]["flush_reasons"]["write-dependency"] = 0
        cur["ops"]["update"]["wall_s"] = 0.15  # +50%
        problems = vb.compare(cur, base)
        assert any("ops.update" in p and "regressed" in p for p in problems)

    def test_allow_list_exempts_op(self):
        base, cur = _minimal_doc(), _minimal_doc()
        cur["ops"]["mixed"]["flush_reasons"]["write-dependency"] = 0
        cur["ops"]["update"]["wall_s"] = 0.15
        assert vb.compare(cur, base, allow=("update",)) == []

    def test_write_dependency_must_drop(self):
        base, cur = _minimal_doc(), _minimal_doc()
        base["ops"]["mixed"]["flush_reasons"]["write-dependency"] = 48
        cur["ops"]["mixed"]["flush_reasons"]["write-dependency"] = 20  # <5x
        problems = vb.compare(cur, base)
        assert any("write-dependency" in p for p in problems)
        cur["ops"]["mixed"]["flush_reasons"]["write-dependency"] = 0
        assert vb.compare(cur, base) == []

    def test_committed_pr5_passes_gate_vs_pr4(self):
        root = _SCRIPT.parents[1]
        cur = json.loads((root / "BENCH_pr5.json").read_text())
        base = json.loads((root / "BENCH_pr4.json").read_text())
        assert vb.compare(cur, base) == []

    def test_write_scaling_below_gate_flagged(self):
        base, cur = _minimal_doc(), _minimal_doc()
        cur["ops"]["mixed"]["flush_reasons"]["write-dependency"] = 0
        cur["ops"]["mixed_sharded"] = _sharded_record()
        cur["ops"]["mixed_sharded"]["scaling"]["update_x4"] = 2.1
        problems = vb.compare(cur, base)
        assert any("update_x4" in p for p in problems)
        cur["ops"]["mixed_sharded"]["scaling"]["update_x4"] = 3.5
        assert vb.compare(cur, base) == []

    def test_rebalance_recovery_below_gate_flagged(self):
        base, cur = _minimal_doc(), _minimal_doc()
        cur["ops"]["mixed"]["flush_reasons"]["write-dependency"] = 0
        cur["ops"]["mixed_sharded"] = _sharded_record()
        reb = cur["ops"]["mixed_sharded"]["rebalance"]
        reb["recovery_vs_uniform"] = 0.5
        problems = vb.compare(cur, base)
        assert any("rebalance" in p for p in problems)
        reb["recovery_vs_uniform"] = 0.95
        assert vb.compare(cur, base) == []

    def test_write_absorption_below_gate_flagged(self):
        base, cur = _minimal_doc(), _minimal_doc()
        cur["ops"]["mixed"]["flush_reasons"]["write-dependency"] = 0
        cur["ops"]["write_burst"] = _write_burst_record()
        cur["ops"]["write_burst"]["memtable"]["absorbed_write_ratio"] = 0.2
        problems = vb.compare(cur, base)
        assert any("absorbed-write ratio" in p for p in problems)
        cur["ops"]["write_burst"]["memtable"]["absorbed_write_ratio"] = 0.85
        assert vb.compare(cur, base) == []

    def test_write_burst_speedup_below_bar_flagged(self):
        base, cur = _minimal_doc(), _minimal_doc()
        cur["ops"]["mixed"]["flush_reasons"]["write-dependency"] = 0
        cur["ops"]["write_burst"] = _write_burst_record()
        # neither criterion met: 1x throughput, 2x p99 drop
        cur["ops"]["write_burst"]["speedup"] = {
            "write_tput_x": 1.0, "write_p99_drop_x": 2.0}
        problems = vb.compare(cur, base)
        assert any("acceptance bar" in p for p in problems)
        # either criterion alone satisfies the OR
        cur["ops"]["write_burst"]["speedup"]["write_tput_x"] = 2.5
        assert vb.compare(cur, base) == []
        cur["ops"]["write_burst"]["speedup"] = {
            "write_tput_x": 1.0, "write_p99_drop_x": 5.0}
        assert vb.compare(cur, base) == []

    def test_committed_pr7_passes_gate_vs_pr6(self):
        # lookup_zipf/mixed/update allow-listed to mirror the CI gate:
        # the PR 7 diff is additive outside the sharding module and the
        # drift is recording-machine state (see ci.yml measurements)
        root = _SCRIPT.parents[1]
        cur = json.loads((root / "BENCH_pr7.json").read_text())
        base = json.loads((root / "BENCH_pr6.json").read_text())
        assert vb.validate(cur) == []
        assert vb.compare(
            cur, base, allow=("lookup_zipf", "mixed", "update")
        ) == []

    def test_committed_pr10_passes_gate_vs_pr9(self):
        # allow-list mirrors the CI gate: the PR 10 diff has no per-op
        # read-path change, the lookup drift reproduces on an
        # unmodified PR 9 checkout, and mixed_sharded's simulated
        # throughput/scaling record is bit-identical across the pair;
        # mixed and update — the ops the memtable path touches — stay
        # gated at 3%
        root = _SCRIPT.parents[1]
        cur = json.loads((root / "BENCH_pr10.json").read_text())
        base = json.loads((root / "BENCH_pr9.json").read_text())
        assert vb.validate(cur) == []
        assert vb.compare(
            cur, base, max_regression=0.03,
            allow=("lookup_uniform", "lookup_zipf", "mixed_sharded"),
        ) == []
        wb = cur["ops"]["write_burst"]
        assert wb["memtable"]["absorbed_write_ratio"] >= 0.5
        assert (cur["ops"]["mixed_sharded"]["scaling"]
                == base["ops"]["mixed_sharded"]["scaling"])
