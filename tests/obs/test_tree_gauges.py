"""Tree-shape gauges (satellite: art/stats.py wired into the registry).

A growth workload drives the node-type mix through the ART ladder — at a
handful of keys everything fits in N4 nodes, and as the fan-out under the
root fills, N16, N48 and finally N256 populations appear.  The gauges
published from :func:`repro.art.stats.publish_stats` (host tree) and the
engine's per-write-batch device gauges must both track that evolution.
"""

import pytest

from repro.art.stats import collect_stats, publish_stats
from repro.art.tree import AdaptiveRadixTree
from repro.host.engine import CuartEngine
from repro.obs import MetricsRegistry


def _keys(n: int) -> list[bytes]:
    # 3-byte big-endian integers: fan-out grows bottom-up as n crosses
    # 4/16/48/256 multiples, marching node types up the ladder
    return [i.to_bytes(3, "big") for i in range(n)]


def _tree(n: int) -> AdaptiveRadixTree:
    t = AdaptiveRadixTree()
    for i, k in enumerate(_keys(n)):
        t.insert(k, i)
    return t


def test_prefix_length_histogram_collected():
    stats = collect_stats(_tree(64).root)
    assert sum(stats.prefix_length_histogram.values()) == (
        stats.total_inner_nodes
    )
    assert stats.compressed_bytes == sum(
        plen * cnt for plen, cnt in stats.prefix_length_histogram.items()
    )


def test_publish_stats_gauges():
    reg = MetricsRegistry()
    stats = collect_stats(_tree(300).root)
    publish_stats(reg, stats)
    assert reg.value("art_keys") == 300
    snap = reg.snapshot()["gauges"]
    assert sum(snap["art_nodes"].values()) == stats.total_inner_nodes
    assert sum(snap["art_leaves"].values()) == 300
    assert "art_prefix_length_nodes" in snap


def test_republish_zeroes_stale_populations():
    reg = MetricsRegistry()
    publish_stats(reg, collect_stats(_tree(300).root))
    assert reg.value("art_nodes", type="N256") > 0
    publish_stats(reg, collect_stats(_tree(4).root))
    assert reg.value("art_nodes", type="N256") == 0
    assert reg.value("art_keys") == 4


def test_node_populations_march_up_the_ladder():
    """N4 -> N16 -> N48 -> N256 populations change across growth."""
    seen = {}
    # one parent node fanning 4 / 12 / 40 / 1200 ways: each size lands in
    # the next node class (<=4, <=16, <=48, then 256-way pages)
    for n in (4, 12, 40, 1200):
        reg = MetricsRegistry()
        publish_stats(reg, collect_stats(_tree(n).root))
        seen[n] = {
            t: reg.value("art_nodes", type=t)
            for t in ("N4", "N16", "N48", "N256")
        }
    assert seen[4] == {"N4": 1, "N16": 0, "N48": 0, "N256": 0}
    assert seen[12]["N16"] > 0
    assert seen[40]["N48"] > 0
    assert seen[1200]["N256"] > 0
    # each stage actually *changed* the mix (the satellite's assertion)
    stages = [seen[n] for n in (4, 12, 40, 1200)]
    for a, b in zip(stages, stages[1:]):
        assert a != b


def test_engine_device_gauges_track_growth():
    """The same ladder, through the engine's device-population gauges."""
    seen = {}
    for n in (40, 1200):
        reg = MetricsRegistry()
        eng = CuartEngine(batch_size=256, metrics=reg)
        eng.populate([(k, i) for i, k in enumerate(_keys(n))])
        eng.map_to_device()
        seen[n] = {
            t: reg.value("device_nodes_live", type=t)
            for t in ("N4", "N16", "N48", "N256")
        }
    assert seen[40]["N256"] in (0, None)
    assert seen[1200]["N256"] > 0
    assert seen[40] != seen[1200]


def test_engine_publish_tree_stats_roundtrip():
    reg = MetricsRegistry()
    eng = CuartEngine(batch_size=256, metrics=reg)
    eng.populate([(k, i) for i, k in enumerate(_keys(500))])
    eng.map_to_device()
    stats = eng.publish_tree_stats()
    assert reg.value("art_keys") == 500 == stats.num_keys
    # host-tree and device populations agree right after mapping
    snap = reg.snapshot()["gauges"]
    assert sum(snap["art_nodes"].values()) == sum(
        snap["device_nodes_live"].values()
    )
