"""Exporter round-trip tests: JSON snapshot, Prometheus text grammar,
chrome trace-event validity."""

import json
import re

import pytest

from repro.obs.export import (
    chrome_trace,
    snapshot_json,
    to_prometheus,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import GPU_TRACK, HOST_TRACK, Tracer


def _loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("ops_total", "ops served", labels=("op",)).labels(
        op="lookup"
    ).inc(7)
    reg.counter("plain_total", "unlabelled").inc(2)
    reg.gauge("depth", "free-list depth").set(3.5)
    h = reg.histogram("lat_us", "latency", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0):
        h.observe(v)
    return reg


def test_snapshot_json_reparses():
    reg = _loaded_registry()
    doc = json.loads(snapshot_json(reg))
    assert doc == reg.snapshot()
    assert doc["counters"]["ops_total"] == {"op=lookup": 7}
    assert doc["histograms"]["lat_us"]["count"] == 4


# one Prometheus sample line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"               # metric name
    r"(_bucket|_sum|_count)?"                   # histogram series suffix
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(\\.|[^\"\\])*\""     # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(\\.|[^\"\\])*\")*\})?"  # more labels
    r" ([0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)


def test_prometheus_grammar():
    text = to_prometheus(_loaded_registry())
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE_RE.match(line), f"bad sample line: {line!r}"


def test_prometheus_histogram_series():
    text = to_prometheus(_loaded_registry())
    # cumulative buckets: 1 <= 2 <= 3, +Inf equals total count
    assert 'lat_us_bucket{le="1"} 1' in text
    assert 'lat_us_bucket{le="10"} 2' in text
    assert 'lat_us_bucket{le="100"} 3' in text
    assert 'lat_us_bucket{le="+Inf"} 4' in text
    assert "lat_us_count 4" in text
    assert "lat_us_sum 555.5" in text


def test_prometheus_type_lines():
    text = to_prometheus(_loaded_registry())
    assert "# TYPE ops_total counter" in text
    assert "# TYPE depth gauge" in text
    assert "# TYPE lat_us histogram" in text


def test_prometheus_label_escaping():
    reg = MetricsRegistry()
    reg.counter("c_total", "c", labels=("k",)).labels(k='a"b\\c\nd').inc()
    text = to_prometheus(reg)
    assert r'c_total{k="a\"b\\c\nd"} 1' in text


def test_chrome_trace_document():
    t = Tracer()
    with t.span("outer"):
        with t.span("inner"):
            t.emit_simulated("sim:inner", 0.001)
    doc = chrome_trace(t)
    # valid JSON document
    doc2 = json.loads(json.dumps(doc))
    events = doc2["traceEvents"]
    # metadata names both tracks
    names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names == {HOST_TRACK: "host", GPU_TRACK: "gpu-sim"}
    # every complete event carries the required keys
    for e in events:
        if e["ph"] == "X":
            assert set(e) >= {"name", "ph", "ts", "dur", "pid", "tid"}
    assert sum(1 for e in events if e["ph"] == "X") == 3


def test_write_chrome_trace_creates_parents(tmp_path):
    t = Tracer()
    with t.span("s"):
        pass
    out = tmp_path / "nested" / "dir" / "trace.json"
    write_chrome_trace(t, out)
    doc = json.loads(out.read_text())
    assert any(e["name"] == "s" for e in doc["traceEvents"])


def test_empty_registry_exports():
    reg = MetricsRegistry()
    assert to_prometheus(reg) == ""
    assert json.loads(snapshot_json(reg)) == {
        "counters": {}, "gauges": {}, "histograms": {}
    }


@pytest.mark.parametrize("q", [0.5, 0.95])
def test_snapshot_percentiles_present(q):
    snap = _loaded_registry().snapshot()
    assert f"p{int(q * 100)}" in snap["histograms"]["lat_us"]
