"""Integration tests: the instrumented pipeline feeds one registry and
one tracer, end to end."""

import numpy as np
import pytest

from repro.host.engine import CuartEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.obs import MetricsRegistry, Tracer
from repro.obs.tracing import GPU_TRACK, HOST_TRACK
from repro.workloads.queries import QueryMix, mixed_queries
from repro.workloads.synthetic import random_keys


@pytest.fixture()
def built():
    reg = MetricsRegistry()
    tracer = Tracer()
    keys = random_keys(2048, 12, seed=3)
    eng = CuartEngine(batch_size=256, metrics=reg, tracer=tracer)
    eng.populate([(k, i) for i, k in enumerate(keys)])
    eng.map_to_device()
    return eng, reg, tracer, keys


def _mixed_run(eng, keys):
    mix = QueryMix(lookups=0.6, updates=0.3, deletes=0.1)
    stream = mixed_queries(keys, 1024, mix, seed=5)
    return MixedWorkloadExecutor(eng).run(stream)


def test_executor_shares_engine_registry_and_tracer(built):
    eng, reg, tracer, _ = built
    ex = MixedWorkloadExecutor(eng)
    assert ex.metrics is reg
    assert ex.tracer is tracer


def test_mixed_run_fills_registry(built):
    eng, reg, _, keys = built
    _, report = _mixed_run(eng, keys)
    # executor histograms carry percentiles for every op class that ran
    for op in report.wall_s:
        summary = reg.value("mixed_op_latency_us", op=op)
        assert summary["count"] > 0
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert op in report.latency_percentiles_by_op
    # key-level conflict tracking retires the batch-granularity
    # write-dependency flushes; only genuine key conflicts (none here,
    # thanks to store-to-load forwarding) or scans/drain cut batches
    assert report.flush_reasons["write-dependency"] == 0
    assert "key-conflict" in report.flush_reasons
    assert report.flush_reasons["drain"] >= 1
    assert sum(report.flush_reasons.values()) == report.batches
    # engine counters saw every query the report did, minus the ones
    # the executor answered host-side via store-to-load forwarding
    fwd = report.forwarded
    assert (reg.value("engine_queries_total", op="update")
            == report.updates - fwd.get("update", 0))
    assert (reg.value("engine_queries_total", op="delete")
            == report.deletes - fwd.get("delete", 0))
    # write kernels accounted their dedup outcomes
    winners = reg.value("write_dedup_winners_total", op="update")
    losers = reg.value("write_dedup_losers_total", op="update")
    assert winners is not None and winners > 0
    assert winners + losers == report.updates - report.update_misses


def test_mixed_trace_has_nested_spans_with_sim_kernels(built):
    """The acceptance-criteria trace shape: host spans nest by time
    containment, and every simulated kernel span on the gpu-sim track
    falls inside some host span."""
    eng, _, tracer, keys = built
    _mixed_run(eng, keys)
    host = [e for e in tracer.events
            if e["ph"] == "X" and e["tid"] == HOST_TRACK]
    sims = [e for e in tracer.events
            if e["ph"] == "X" and e["tid"] == GPU_TRACK]
    assert sims, "no simulated kernel spans recorded"
    assert any(e["name"].startswith("sim:") for e in sims)

    def contains(outer, inner):
        return (outer["ts"] <= inner["ts"]
                and inner["ts"] + inner["dur"]
                <= outer["ts"] + outer["dur"])

    # every engine.<op> span nests inside a mixed.<op> span
    mixed_spans = [e for e in host if e["name"].startswith("mixed.")]
    engine_spans = [e for e in host if e["name"].startswith("engine.")
                    and e["name"] != "engine.populate"
                    and e["name"] != "engine.map_to_device"]
    assert mixed_spans and engine_spans
    for es in engine_spans:
        assert any(contains(ms, es) for ms in mixed_spans), (
            f"engine span {es['name']} not under any mixed span"
        )
    # every simulated kernel lands inside a host span (it is emitted at
    # dispatch time; its simulated duration may extend past wall-clock,
    # so containment is checked on the start timestamp)
    for s in sims:
        assert any(h["ts"] <= s["ts"] <= h["ts"] + h["dur"] for h in host)


def test_cache_stats_read_registry(built):
    """Satellite: engine cache accounting goes through the cache's own
    API — the stats view and the registry never disagree."""
    reg = MetricsRegistry()
    keys = random_keys(512, 12, seed=3)
    eng = CuartEngine(batch_size=128, cache_size=256, metrics=reg)
    eng.populate([(k, i) for i, k in enumerate(keys)])
    eng.map_to_device()
    eng.lookup(list(keys[:64]))   # misses populate the cache
    eng.lookup(list(keys[:64]))   # now hits
    eng.lookup([keys[0]] * 32)    # duplicate keys: dedup hits
    st = eng.cache.stats
    assert st.hits == reg.value("cache_hits_total")
    assert st.misses == reg.value("cache_misses_total")
    assert st.hits > 0 and st.misses > 0
    assert 0.0 < st.hit_rate < 1.0


def test_device_gauges_refresh_after_writes(built):
    eng, reg, _, keys = built
    base_n4 = reg.value("device_nodes_live", type="N4")
    assert base_n4 is not None and base_n4 > 0
    # leaves live per type must equal the key population
    leaves = sum(
        v for lv in ("leaf8", "leaf16", "leaf32", "dynleaf")
        for v in [reg.value("device_leaves_live", type=lv)] if v is not None
    )
    assert leaves == len(keys)
    # deletes push free-list depth up and live leaves down
    eng.delete(list(keys[:100]))
    free = sum(
        v for lv in ("leaf8", "leaf16", "leaf32")
        for v in [reg.value("device_free_list_depth", type=lv)]
        if v is not None
    )
    assert free > 0


def test_kernel_histogram_feeds_from_cost_model(built):
    eng, reg, _, keys = built
    eng.lookup(list(keys[:512]))
    s = reg.value("gpusim_kernel_us", op="lookup")
    assert s["count"] >= 1
    assert s["mean"] > 0
    assert np.isfinite(s["p99"])
