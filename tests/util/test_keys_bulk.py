"""Property tests: the bulk key encoders against their scalar references.

The vectorized serving path rests on ``encode_key_batch`` /
``encode_int_batch`` / ``encode_str_batch`` producing byte-identical
output to the original per-key encoders, and on ``dedup_rows`` grouping
encoded rows exactly.  These tests pin that equivalence down, including
the awkward inputs (trailing NUL bytes, explicit widths, forced token
collisions).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyEncodingError
from repro.util import keys as keys_mod
from repro.util.keys import (
    _keys_to_matrix_scalar,
    dedup_rows,
    encode_int,
    encode_int_batch,
    encode_key_batch,
    encode_str,
    encode_str_batch,
    keys_to_matrix,
)

byte_keys = st.lists(st.binary(min_size=1, max_size=24), min_size=1, max_size=64)


class TestEncodeKeyBatch:
    @given(byte_keys)
    @settings(max_examples=200)
    def test_matches_scalar_reference(self, ks):
        mat, lens = encode_key_batch(ks)
        ref_mat, ref_lens = _keys_to_matrix_scalar(ks)
        np.testing.assert_array_equal(mat, ref_mat)
        np.testing.assert_array_equal(lens, ref_lens)

    @given(byte_keys, st.integers(24, 40))
    @settings(max_examples=100)
    def test_matches_scalar_reference_with_width(self, ks, width):
        mat, lens = encode_key_batch(ks, width=width)
        ref_mat, ref_lens = _keys_to_matrix_scalar(ks, width=width)
        np.testing.assert_array_equal(mat, ref_mat)
        np.testing.assert_array_equal(lens, ref_lens)

    def test_trailing_nul_bytes_survive(self):
        # fixed-width bytes dtypes strip trailing NULs on *element*
        # access; the matrix view must still carry them
        mat, lens = encode_key_batch([b"a\x00\x00", b"b"])
        assert lens.tolist() == [3, 1]
        assert mat[0].tolist() == [ord("a"), 0, 0]

    def test_empty_batch(self):
        mat, lens = encode_key_batch([])
        assert mat.shape == (0, 1) and lens.size == 0

    def test_empty_key_raises(self):
        with pytest.raises(KeyEncodingError):
            encode_key_batch([b"ok", b""])

    def test_too_wide_key_raises(self):
        with pytest.raises(KeyEncodingError):
            encode_key_batch([b"abc"], width=2)

    def test_str_keys_raise(self):
        with pytest.raises(KeyEncodingError):
            encode_key_batch(["abc"])

    def test_mixed_keys_raise(self):
        with pytest.raises(KeyEncodingError):
            encode_key_batch([b"ok", "nope"])

    def test_keys_to_matrix_uses_bulk_path(self):
        ks = [b"alpha", b"beta"]
        mat, lens = keys_to_matrix(ks)
        ref_mat, ref_lens = _keys_to_matrix_scalar(ks)
        np.testing.assert_array_equal(mat, ref_mat)
        np.testing.assert_array_equal(lens, ref_lens)


class TestEncodeIntBatch:
    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=32))
    @settings(max_examples=100)
    def test_matches_scalar_width8(self, vals):
        out = encode_int_batch(vals, width=8)
        for i, v in enumerate(vals):
            assert out[i].tobytes() == encode_int(v, 8)

    @given(
        st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=32),
        st.sampled_from([3, 4, 8, 12]),
    )
    @settings(max_examples=100)
    def test_matches_scalar_other_widths(self, vals, width):
        out = encode_int_batch(vals, width=width)
        for i, v in enumerate(vals):
            assert out[i].tobytes() == encode_int(v, width)

    def test_negative_raises(self):
        with pytest.raises(KeyEncodingError):
            encode_int_batch([1, -2])

    def test_overflow_raises(self):
        with pytest.raises(KeyEncodingError):
            encode_int_batch([256], width=1)


class TestEncodeStrBatch:
    @given(
        st.lists(
            st.text(
                alphabet=st.characters(
                    blacklist_characters="\x00",
                    blacklist_categories=("Cs",),  # lone surrogates
                ),
                max_size=12,
            ),
            min_size=1,
            max_size=32,
        )
    )
    @settings(max_examples=100)
    def test_matches_scalar(self, texts):
        assert encode_str_batch(texts) == [encode_str(t) for t in texts]

    def test_nul_raises(self):
        with pytest.raises(KeyEncodingError):
            encode_str_batch(["ok", "b\x00ad"])


class TestDedupRows:
    @staticmethod
    def _check(ks):
        mat, lens = encode_key_batch(ks)
        first, inverse = dedup_rows(mat, lens)
        # every row's representative is byte- and length-identical to it
        rep = first[inverse]
        np.testing.assert_array_equal(mat[rep], mat)
        np.testing.assert_array_equal(lens[rep], lens)
        # distinct groups hold distinct keys
        uniq = {ks[int(i)] for i in first}
        assert len(uniq) == first.size == len(set(ks))

    @given(byte_keys)
    @settings(max_examples=200)
    def test_grouping_exact(self, ks):
        self._check(ks)

    def test_trailing_nul_not_merged_with_prefix(self):
        # the padded rows of b"a" and b"a\x00" are identical: only the
        # carried length can tell them apart
        self._check([b"a", b"a\x00", b"a", b"a\x00\x00"])

    def test_collision_fallback_is_exact(self, monkeypatch):
        # zero mixing constants collapse every row token to the same
        # value, forcing the verify step to reject the hash grouping and
        # take the exact memcmp fallback
        monkeypatch.setattr(keys_mod, "_MIX_A", np.uint64(0))
        monkeypatch.setattr(keys_mod, "_MIX_B", np.uint64(0))
        ks = [b"x", b"y", b"x", b"zz", b"y"]
        self._check(ks)
