"""Unit tests for packed 64-bit node links."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constants import (
    LINK_EMPTY,
    LINK_HOST,
    LINK_INDEX_MASK,
    LINK_LEAF32,
    LINK_N4,
    LINK_N256,
)
from repro.errors import ReproError
from repro.util.packing import (
    is_empty,
    is_host,
    link_index,
    link_indices,
    link_type,
    link_types,
    pack_link,
    pack_links,
    unpack_link,
)


class TestScalarPacking:
    def test_roundtrip(self):
        link = pack_link(LINK_N4, 1234)
        assert unpack_link(link) == (LINK_N4, 1234)

    def test_type_in_msb(self):
        assert pack_link(LINK_N256, 0) == LINK_N256 << 56

    def test_empty_is_zero(self):
        assert pack_link(LINK_EMPTY, 0) == 0
        assert is_empty(0)

    def test_host_flag(self):
        assert is_host(pack_link(LINK_HOST, 7))
        assert not is_host(pack_link(LINK_N4, 7))

    def test_max_index(self):
        link = pack_link(LINK_LEAF32, LINK_INDEX_MASK)
        assert link_index(link) == LINK_INDEX_MASK
        assert link_type(link) == LINK_LEAF32

    def test_index_overflow_raises(self):
        with pytest.raises(ReproError):
            pack_link(LINK_N4, LINK_INDEX_MASK + 1)

    def test_type_overflow_raises(self):
        with pytest.raises(ReproError):
            pack_link(256, 0)

    def test_negative_raises(self):
        with pytest.raises(ReproError):
            pack_link(LINK_N4, -1)

    @given(st.integers(0, 255), st.integers(0, LINK_INDEX_MASK))
    def test_roundtrip_property(self, t, i):
        assert unpack_link(pack_link(t, i)) == (t, i)


class TestVectorPacking:
    def test_matches_scalar(self):
        types = np.array([1, 4, 7], dtype=np.uint64)
        idx = np.array([0, 10, LINK_INDEX_MASK], dtype=np.uint64)
        links = pack_links(types, idx)
        for j in range(3):
            assert int(links[j]) == pack_link(int(types[j]), int(idx[j]))

    def test_extract(self):
        links = pack_links(np.array([2, 5]), np.array([3, 9]))
        assert link_types(links).tolist() == [2, 5]
        assert link_indices(links).tolist() == [3, 9]

    def test_dtypes(self):
        links = pack_links(np.array([1]), np.array([1]))
        assert links.dtype == np.uint64
        assert link_types(links).dtype == np.int64

    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.integers(0, LINK_INDEX_MASK)),
            min_size=1,
            max_size=50,
        )
    )
    def test_vector_roundtrip_property(self, pairs):
        t = np.array([p[0] for p in pairs], dtype=np.uint64)
        i = np.array([p[1] for p in pairs], dtype=np.uint64)
        links = pack_links(t, i)
        assert link_types(links).tolist() == [p[0] for p in pairs]
        assert link_indices(links).tolist() == [p[1] for p in pairs]
