"""Unit tests for RNG helpers, validation helpers and constants."""

import numpy as np
import pytest

from repro import constants
from repro.errors import ReproError
from repro.util.rng import DEFAULT_SEED, derive_rng, make_rng
from repro.util.validation import (
    require,
    require_positive,
    require_power_of_two,
    require_type,
)


class TestRng:
    def test_default_seed_reproducible(self):
        a = make_rng(None).integers(0, 1000, 10)
        b = make_rng(None).integers(0, 1000, 10)
        assert (a == b).all()

    def test_explicit_seed(self):
        a = make_rng(7).integers(0, 1000, 10)
        b = make_rng(7).integers(0, 1000, 10)
        c = make_rng(8).integers(0, 1000, 10)
        assert (a == b).all()
        assert not (a == c).all()

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_derive_streams_differ(self):
        base = make_rng(5)
        a = derive_rng(base, 0).integers(0, 10**9)
        base2 = make_rng(5)
        b = derive_rng(base2, 1).integers(0, 10**9)
        assert a != b


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ReproError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1, "x")
        for bad in (0, -1, -0.5):
            with pytest.raises(ReproError):
                require_positive(bad, "x")

    @pytest.mark.parametrize("ok", [1, 2, 4, 1024, 1 << 20])
    def test_power_of_two_accepts(self, ok):
        require_power_of_two(ok, "n")

    @pytest.mark.parametrize("bad", [0, 3, 6, 100, -4])
    def test_power_of_two_rejects(self, bad):
        with pytest.raises(ReproError):
            require_power_of_two(bad, "n")

    def test_require_type(self):
        require_type(5, int, "v")
        with pytest.raises(ReproError):
            require_type("s", int, "v")


class TestConstants:
    def test_link_codes_disjoint_and_ordered(self):
        codes = [
            constants.LINK_EMPTY, constants.LINK_N4, constants.LINK_N16,
            constants.LINK_N48, constants.LINK_N256, constants.LINK_LEAF8,
            constants.LINK_LEAF16, constants.LINK_LEAF32, constants.LINK_HOST,
            constants.LINK_DYNLEAF,
        ]
        assert codes == list(range(10))  # paper's 1..7 plus 0/8/9

    def test_node_records_16_byte_aligned(self):
        for code, size in constants.CUART_NODE_BYTES.items():
            assert size % 16 == 0, code

    def test_grt_sizes_match_paper_quotes(self):
        # "650B for N48 and 2KB for N256" (section 3.1)
        n48 = constants.GRT_HEADER_BYTES + constants.GRT_BODY_BYTES[3]
        n256 = constants.GRT_HEADER_BYTES + constants.GRT_BODY_BYTES[4]
        assert 640 <= n48 <= 672
        assert 2048 <= n256 <= 2080

    def test_leaf_capacities(self):
        assert list(constants.LEAF_CAPACITY.values()) == [8, 16, 32]
        assert constants.MAX_SHORT_KEY == 32

    def test_eval_defaults_match_section_4_3(self):
        assert constants.DEFAULT_BATCH_SIZE == 32768
        assert constants.DEFAULT_HOST_THREADS == 8
        assert constants.DEFAULT_UPDATE_HASH_SLOTS == 1 << 20

    def test_nil_value_is_max_u64(self):
        assert constants.NIL_VALUE == 2**64 - 1

    def test_link_index_space(self):
        assert constants.LINK_INDEX_BITS == 56
        assert constants.LINK_INDEX_MASK == (1 << 56) - 1
