"""Unit tests for binary-comparable key encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KeyEncodingError
from repro.util.keys import (
    common_prefix_len,
    decode_int,
    encode_int,
    encode_str,
    encode_uuid_like,
    keys_to_matrix,
    matrix_to_keys,
    sort_keys,
)


class TestEncodeInt:
    def test_big_endian(self):
        assert encode_int(1, 4) == b"\x00\x00\x00\x01"

    def test_default_width_is_8(self):
        assert len(encode_int(42)) == 8

    def test_roundtrip(self):
        for v in (0, 1, 255, 256, 2**32, 2**64 - 1):
            assert decode_int(encode_int(v, 8)) == v

    def test_order_preserving(self):
        values = [0, 1, 2, 255, 256, 1000, 2**31, 2**63]
        encoded = [encode_int(v, 8) for v in values]
        assert encoded == sorted(encoded)

    def test_overflow_raises(self):
        with pytest.raises(KeyEncodingError):
            encode_int(256, 1)

    def test_negative_raises(self):
        with pytest.raises(KeyEncodingError):
            encode_int(-1, 8)

    def test_zero_width_raises(self):
        with pytest.raises(KeyEncodingError):
            encode_int(0, 0)

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_order_preserving_property(self, a, b):
        assert (a < b) == (encode_int(a, 8) < encode_int(b, 8))


class TestEncodeStr:
    def test_appends_terminator(self):
        assert encode_str("ab") == b"ab\x00"

    def test_prefix_free(self):
        # "a" would be a prefix of "ab" without the terminator
        assert not encode_str("ab").startswith(encode_str("a"))

    def test_rejects_nul(self):
        with pytest.raises(KeyEncodingError):
            encode_str("a\x00b")

    @given(st.text(min_size=0, max_size=20), st.text(min_size=0, max_size=20))
    def test_encoding_is_injective(self, a, b):
        if "\x00" in a or "\x00" in b:
            return
        assert (a == b) == (encode_str(a) == encode_str(b))


class TestUuidLike:
    def test_width(self):
        assert len(encode_uuid_like(1, 2)) == 16

    def test_order(self):
        assert encode_uuid_like(0, 5) < encode_uuid_like(1, 0)


class TestCommonPrefixLen:
    @pytest.mark.parametrize(
        "a,b,expect",
        [
            (b"", b"", 0),
            (b"abc", b"abc", 3),
            (b"abc", b"abd", 2),
            (b"abc", b"xyz", 0),
            (b"ab", b"abc", 2),
        ],
    )
    def test_cases(self, a, b, expect):
        assert common_prefix_len(a, b) == expect

    @given(st.binary(max_size=30), st.binary(max_size=30))
    def test_symmetry_and_bound(self, a, b):
        n = common_prefix_len(a, b)
        assert n == common_prefix_len(b, a)
        assert a[:n] == b[:n]
        if n < min(len(a), len(b)):
            assert a[n] != b[n]


class TestKeyMatrix:
    def test_roundtrip(self):
        keys = [b"a", b"abc", b"zz"]
        mat, lens = keys_to_matrix(keys, width=4)
        assert mat.shape == (3, 4)
        assert matrix_to_keys(mat, lens) == keys

    def test_auto_width(self):
        mat, _ = keys_to_matrix([b"abcd", b"x"])
        assert mat.shape[1] == 4

    def test_padding_is_zero(self):
        mat, _ = keys_to_matrix([b"\xff"], width=3)
        assert mat[0, 1] == 0 and mat[0, 2] == 0

    def test_too_long_raises(self):
        with pytest.raises(KeyEncodingError):
            keys_to_matrix([b"abcdef"], width=2)

    def test_empty_key_raises(self):
        with pytest.raises(KeyEncodingError):
            keys_to_matrix([b""])

    def test_dtype(self):
        mat, lens = keys_to_matrix([b"ab"])
        assert mat.dtype == np.uint8
        assert lens.dtype == np.int64

    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=20))
    def test_roundtrip_property(self, keys):
        mat, lens = keys_to_matrix(keys, width=16)
        assert matrix_to_keys(mat, lens) == keys


def test_sort_keys_is_lexicographic():
    keys = [b"b", b"a", b"ab", b"\xff", b"\x00"]
    assert sort_keys(keys) == [b"\x00", b"a", b"ab", b"b", b"\xff"]


class TestSignedIntEncoding:
    def test_roundtrip(self):
        from repro.util.keys import decode_signed_int, encode_signed_int

        for v in (-(2**63), -1000, -1, 0, 1, 1000, 2**63 - 1):
            assert decode_signed_int(encode_signed_int(v)) == v

    def test_order_preserving(self):
        from repro.util.keys import encode_signed_int

        values = [-(2**63), -65536, -256, -2, -1, 0, 1, 255, 2**62]
        encoded = [encode_signed_int(v) for v in values]
        assert encoded == sorted(encoded)

    def test_out_of_range(self):
        from repro.util.keys import encode_signed_int

        with pytest.raises(KeyEncodingError):
            encode_signed_int(2**63)
        with pytest.raises(KeyEncodingError):
            encode_signed_int(200, width=1)

    @given(st.integers(-(2**63), 2**63 - 1), st.integers(-(2**63), 2**63 - 1))
    def test_order_property(self, a, b):
        from repro.util.keys import encode_signed_int

        assert (a < b) == (encode_signed_int(a) < encode_signed_int(b))


class TestFloatEncoding:
    def test_roundtrip(self):
        from repro.util.keys import decode_float, encode_float

        for v in (-1e300, -1.5, -0.0, 0.0, 1e-300, 3.14, 1e300,
                  float("inf"), float("-inf")):
            assert decode_float(encode_float(v)) == v

    def test_order(self):
        from repro.util.keys import encode_float

        values = [float("-inf"), -1e10, -1.0, -1e-10, 0.0, 1e-10, 1.0,
                  1e10, float("inf")]
        encoded = [encode_float(v) for v in values]
        assert encoded == sorted(encoded)

    def test_nan_rejected(self):
        from repro.util.keys import encode_float

        with pytest.raises(KeyEncodingError):
            encode_float(float("nan"))

    def test_negative_zero_is_a_distinct_key(self):
        # -0.0 == 0.0 numerically but their bit patterns differ; the
        # encoding keeps them distinct (and adjacent) keys
        from repro.util.keys import encode_float

        assert encode_float(-0.0) < encode_float(0.0)

    @given(
        st.floats(allow_nan=False, allow_infinity=True),
        st.floats(allow_nan=False, allow_infinity=True),
    )
    def test_order_property(self, a, b):
        from repro.util.keys import encode_float

        if a < b:
            assert encode_float(a) < encode_float(b)
        elif a == b and str(a) == str(b):  # excludes the -0.0/0.0 pair
            assert encode_float(a) == encode_float(b)


class TestCompositeKeys:
    def test_concatenates(self):
        from repro.util.keys import encode_composite

        k = encode_composite(encode_int(1, 4), encode_str("x"))
        assert k == encode_int(1, 4) + encode_str("x")

    def test_sorts_by_leading_column_first(self):
        from repro.util.keys import encode_composite

        a = encode_composite(encode_int(1, 4), encode_str("zzz"))
        b = encode_composite(encode_int(2, 4), encode_str("aaa"))
        assert a < b

    def test_empty_rejected(self):
        from repro.util.keys import encode_composite

        with pytest.raises(KeyEncodingError):
            encode_composite()
        with pytest.raises(KeyEncodingError):
            encode_composite(b"")
