"""Unit tests for transaction-log accounting."""

import pytest

from repro.gpusim.transactions import TransactionLog


class TestTransactionLog:
    def test_empty(self):
        log = TransactionLog()
        assert log.total_transactions == 0
        assert log.total_bytes == 0
        assert log.dependent_rounds == 0

    def test_record_aggregates(self):
        log = TransactionLog()
        log.begin_round(100)
        log.record(64, 100)
        log.record(16, 50, aligned=False)
        assert log.total_transactions == 150
        assert log.total_bytes == 64 * 100 + 16 * 50
        assert log.unaligned_transactions == 50
        assert log.rounds[0].transactions == 150

    def test_record_without_round_opens_one(self):
        log = TransactionLog()
        log.launched_threads = 7
        log.record(8, 1)
        assert log.dependent_rounds == 1
        assert log.rounds[0].active_threads == 7

    def test_zero_count_ignored(self):
        log = TransactionLog()
        log.record(64, 0)
        assert log.total_transactions == 0

    def test_atomics_and_compute(self):
        log = TransactionLog()
        log.record_atomics(10)
        log.record_compute(500)
        assert log.atomic_ops == 10
        assert log.compute_cycles == 500

    def test_merge(self):
        a, b = TransactionLog(), TransactionLog()
        a.begin_round(10)
        a.record(64, 10)
        b.begin_round(5)
        b.record(32, 5)
        b.record_atomics(3)
        b.serial_stall_s = 1e-6
        a.merge(b)
        assert a.total_transactions == 15
        assert a.dependent_rounds == 2
        assert a.atomic_ops == 3
        assert a.serial_stall_s == 1e-6

    def test_summary_keys(self):
        log = TransactionLog()
        log.begin_round(4)
        log.record(16, 4)
        s = log.summary()
        assert s["transactions"] == 4
        assert s["rounds"] == 1
