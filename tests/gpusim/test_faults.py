"""Deterministic fault-injection layer (repro.gpusim.faults)."""

from __future__ import annotations

import pytest

from repro.errors import (
    DeviceFault,
    DeviceOOMError,
    HashTableFullError,
    PcieTransferError,
    SimulationError,
    TransientKernelError,
)
from repro.gpusim.faults import FAULT_KINDS, FaultConfig, FaultInjector
from repro.gpusim.memory import allocation_guard
from repro.gpusim.pcie import PCIE4_X16
from repro.gpusim.streams import launch_kernel
from repro.obs.metrics import MetricsRegistry


class TestFaultConfig:
    def test_defaults_disabled(self):
        cfg = FaultConfig()
        assert not cfg.enabled
        assert not FaultInjector(cfg).enabled

    def test_uniform_enables_every_kind(self):
        cfg = FaultConfig.uniform(0.25)
        assert cfg.enabled
        assert cfg.kernel_abort_rate == 0.25
        assert cfg.pcie_timeout_rate == 0.25
        assert cfg.pcie_corruption_rate == 0.25
        assert cfg.hashtable_fault_rate == 0.25
        assert cfg.oom_rate == 0.25

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rate_validation(self, rate):
        with pytest.raises(SimulationError) as ei:
            FaultConfig(kernel_abort_rate=rate)
        assert ei.value.context["value"] == rate

    def test_fault_kinds_frozen_contract(self):
        assert FAULT_KINDS == (
            "kernel_abort", "pcie_timeout", "pcie_corruption",
            "hashtable_insert", "device_oom",
        )


class TestDeterminism:
    def _drive(self, seed):
        inj = FaultInjector(FaultConfig.uniform(0.3, seed=seed))
        hits = []
        for i in range(200):
            try:
                inj.on_kernel_launch("lookup", 64)
            except DeviceFault as exc:
                hits.append((i, type(exc).__name__))
            try:
                inj.on_transfer(4096, direction="h2d", op="lookup")
            except DeviceFault as exc:
                hits.append((i, type(exc).__name__))
        return hits, inj.snapshot()

    def test_same_seed_same_faults(self):
        a_hits, a_snap = self._drive(7)
        b_hits, b_snap = self._drive(7)
        assert a_hits == b_hits
        assert a_snap == b_snap
        assert sum(a_snap.values()) == len(a_hits)

    def test_different_seed_different_faults(self):
        a_hits, _ = self._drive(7)
        b_hits, _ = self._drive(8)
        assert a_hits != b_hits

    def test_zero_rate_consumes_no_draws(self):
        # an injector with only kernel aborts enabled must produce the
        # same abort schedule whether or not other hooks are exercised
        cfg = FaultConfig(kernel_abort_rate=0.3, seed=11)

        def aborts(poke_other_hooks):
            inj = FaultInjector(cfg)
            out = []
            for i in range(100):
                if poke_other_hooks:
                    inj.on_transfer(64, direction="h2d")
                    inj.on_alloc(64, "x")
                try:
                    inj.on_kernel_launch("lookup", 1)
                except DeviceFault:
                    out.append(i)
            return out

        assert aborts(False) == aborts(True)


class TestHooks:
    def _always(self, **kw):
        return FaultInjector(FaultConfig(seed=1, **kw))

    def test_kernel_abort_is_transient_with_context(self):
        inj = self._always(kernel_abort_rate=1.0)
        with pytest.raises(TransientKernelError) as ei:
            launch_kernel("update", 32, injector=inj)
        exc = ei.value
        assert exc.transient
        assert exc.context["op"] == "update"
        assert exc.context["batch_size"] == 32

    def test_pcie_timeout_and_corruption(self):
        inj = self._always(pcie_timeout_rate=1.0)
        with pytest.raises(PcieTransferError) as ei:
            PCIE4_X16.transfer(1024, direction="h2d", injector=inj, op="lookup")
        assert ei.value.context["fault"] == "pcie_timeout"
        inj2 = self._always(pcie_corruption_rate=1.0)
        with pytest.raises(PcieTransferError) as ei:
            PCIE4_X16.transfer(1024, direction="d2h", injector=inj2)
        assert ei.value.context["fault"] == "pcie_corruption"
        assert ei.value.context["direction"] == "d2h"
        assert ei.value.transient

    def test_hashtable_fault_is_transient_capacity_error(self):
        inj = self._always(hashtable_fault_rate=1.0)
        with pytest.raises(HashTableFullError) as ei:
            inj.on_hashtable("update", 16)
        exc = ei.value
        assert exc.transient  # injected refusals retry; genuine ones don't
        assert exc.context["buffer"] == "hash-table"
        assert exc.context["op"] == "update"

    def test_oom_via_allocation_guard(self):
        inj = self._always(oom_rate=1.0)
        with pytest.raises(DeviceOOMError) as ei:
            allocation_guard(1 << 20, "mapped layout", injector=inj, op="map")
        assert ei.value.transient
        assert ei.value.context["buffer"] == "mapped layout"
        assert ei.value.context["requested_bytes"] == 1 << 20
        # no injector -> no-op
        allocation_guard(1 << 20, "mapped layout", injector=None)

    def test_no_fault_paths_are_noops(self):
        launch_kernel("lookup", 8, injector=None)
        assert PCIE4_X16.transfer(0, injector=self._always(
            pcie_timeout_rate=1.0)) == 0.0

    def test_injected_counters_reach_registry(self):
        m = MetricsRegistry()
        inj = FaultInjector(
            FaultConfig(kernel_abort_rate=1.0, seed=2), metrics=m
        )
        for _ in range(3):
            with pytest.raises(TransientKernelError):
                inj.on_kernel_launch("lookup", 1)
        assert inj.snapshot()["kernel_abort"] == 3
        assert inj.total_injected == 3
        assert m.value(
            "gpusim_faults_injected_total", kind="kernel_abort"
        ) == 3
