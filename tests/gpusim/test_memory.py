"""Unit tests for the memory-architecture model (section 4.6)."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.memory import (
    DDR4_SERVER,
    GDDR5_GTX1070,
    GDDR6X_RTX3090,
    HBM2_A100,
    MemoryArchitecture,
)


class TestTransactionCycles:
    def test_single_atom(self):
        arch = GDDR6X_RTX3090
        assert arch.transaction_cycles(32) == arch.overhead_commands + 1

    def test_multi_atom(self):
        arch = GDDR6X_RTX3090  # 32-byte atoms
        assert arch.transaction_cycles(176) == arch.overhead_commands + 6

    def test_unaligned_penalty(self):
        arch = GDDR6X_RTX3090
        assert (
            arch.transaction_cycles(32, aligned=False)
            == arch.transaction_cycles(32) + 1
        )

    def test_small_read_wastes_wide_atom(self):
        # the paper's HBM2 problem: a 16-byte header still burns a 64-byte
        # atom, so the fixed command overhead dominates
        assert HBM2_A100.transaction_cycles(16) == HBM2_A100.transaction_cycles(64)


class TestServiceTime:
    def test_empty(self):
        assert HBM2_A100.service_time({}) == 0.0

    def test_command_bound_scales_with_count(self):
        t1 = HBM2_A100.service_time({(64, True): 1000})
        t2 = HBM2_A100.service_time({(64, True): 2000})
        assert t2 == pytest.approx(2 * t1)

    def test_bandwidth_bound_kicks_in_for_huge_transfers(self):
        arch = MemoryArchitecture(
            name="t", channels=2, command_clock_hz=1e9, atom_bytes=64,
            overhead_commands=0.0, peak_bandwidth=1e9, random_latency_s=1e-7,
        )
        # 1 GB of traffic at 1 GB/s: bandwidth bound = 1s > command bound
        t = arch.service_time({(1 << 20, True): 1024})
        assert t == pytest.approx((1 << 30) / 1e9)


class TestPaperOrdering:
    """The section-4.6 claims the model must encode."""

    def test_rtx3090_higher_random_read_rate_than_a100(self):
        for size in (16, 32, 64):
            assert GDDR6X_RTX3090.random_read_rate(size) > HBM2_A100.random_read_rate(
                size
            )

    def test_a100_higher_bandwidth(self):
        assert HBM2_A100.peak_bandwidth > GDDR6X_RTX3090.peak_bandwidth

    def test_gtx1070_slowest(self):
        assert GDDR5_GTX1070.random_read_rate(64) < min(
            HBM2_A100.random_read_rate(64), GDDR6X_RTX3090.random_read_rate(64)
        )

    def test_channel_counts_from_paper(self):
        assert HBM2_A100.channels == 40  # "40 independent memory channels"
        assert GDDR6X_RTX3090.channels == 24  # "only 24 channels"

    def test_command_clocks_from_paper(self):
        assert HBM2_A100.command_clock_hz == pytest.approx(1.215e9)
        assert GDDR6X_RTX3090.command_clock_hz == pytest.approx(2.5e9)


def test_invalid_architecture_rejected():
    with pytest.raises(SimulationError):
        MemoryArchitecture(
            name="bad", channels=0, command_clock_hz=1e9, atom_bytes=64,
            overhead_commands=1, peak_bandwidth=1e9, random_latency_s=1e-7,
        )


def test_cpu_memories_have_no_scatter_derating():
    assert DDR4_SERVER.scatter_efficiency == 1.0
