"""Unit tests for the roofline cost model."""

import pytest

from repro.gpusim.cost_model import (
    CostModel,
    cpu_lookup_time,
    cpu_update_time,
)
from repro.gpusim.devices import A100, RTX3090, GTX1070, WORKSTATION_CPU
from repro.gpusim.transactions import TransactionLog


def make_log(tx=1000, size=64, rounds=4, threads=1024, distinct=1 << 20):
    log = TransactionLog()
    log.launched_threads = threads
    per_round = tx // rounds
    for _ in range(rounds):
        log.begin_round(threads)
        log.record(size, per_round)
        log.rounds[-1].distinct_bytes = distinct
    return log


class TestKernelTime:
    def test_positive_and_bounded_below_by_launch(self):
        t = CostModel(RTX3090).kernel_time(make_log())
        assert t.total_s >= RTX3090.launch_overhead_s

    def test_more_transactions_cost_more(self):
        cm = CostModel(RTX3090, l2_scale=1e-6)  # force DRAM
        small = cm.kernel_time(make_log(tx=10_000))
        big = cm.kernel_time(make_log(tx=1_000_000))
        assert big.total_s > small.total_s

    def test_binding_constraint_label(self):
        cm = CostModel(RTX3090, l2_scale=1e-6)
        t = cm.kernel_time(make_log(tx=2_000_000))
        assert t.binding_constraint in ("memory-command", "latency-chain", "compute")

    def test_serial_stall_added(self):
        log = make_log()
        base = CostModel(RTX3090).kernel_time(log).total_s
        log.serial_stall_s = 1e-3
        stalled = CostModel(RTX3090).kernel_time(log).total_s
        assert stalled == pytest.approx(base + 1e-3)

    def test_latency_bound_grows_with_rounds(self):
        cm = CostModel(RTX3090, l2_scale=1e-6)
        few = cm.kernel_time(make_log(tx=100, rounds=2, threads=64))
        many = cm.kernel_time(make_log(tx=100, rounds=20, threads=64))
        assert many.latency_bound_s > few.latency_bound_s

    def test_throughput_mops(self):
        cm = CostModel(RTX3090)
        log = make_log(threads=32768)
        mops = cm.throughput_mops(log, 32768)
        assert mops > 0


class TestL2Fraction:
    def test_tiny_footprint_fully_resident(self):
        cm = CostModel(RTX3090)
        log = make_log(distinct=1024)
        assert cm.l2_fraction(log) == 1.0

    def test_huge_footprint_not_resident(self):
        cm = CostModel(RTX3090)
        log = make_log(distinct=1 << 30)
        assert cm.l2_fraction(log) == 0.0

    def test_partial_residency(self):
        cm = CostModel(RTX3090)
        log = TransactionLog()
        log.launched_threads = 100
        log.begin_round(100)
        log.record(64, 100)
        log.rounds[-1].distinct_bytes = 1024  # resident
        log.begin_round(100)
        log.record(64, 100)
        log.rounds[-1].distinct_bytes = 1 << 30  # not resident
        assert cm.l2_fraction(log) == pytest.approx(0.5)

    def test_l2_scale_shrinks_cache(self):
        log = make_log(rounds=1, distinct=RTX3090.l2_bytes // 2)
        assert CostModel(RTX3090).l2_fraction(log) == 1.0
        assert CostModel(RTX3090, l2_scale=0.25).l2_fraction(log) == 0.0

    def test_no_footprints_uses_default(self):
        log = TransactionLog()
        log.begin_round(10)
        log.record(64, 10)
        cm = CostModel(RTX3090, default_l2_fraction=0.37)
        assert cm.l2_fraction(log) == 0.37


class TestDeviceOrdering:
    def test_rtx3090_beats_a100_on_scattered_small_reads(self):
        log = make_log(tx=500_000, size=64, distinct=1 << 30, threads=32768)
        t3090 = CostModel(RTX3090, l2_scale=1e-6).kernel_time(log)
        ta100 = CostModel(A100, l2_scale=1e-6).kernel_time(log)
        assert t3090.total_s < ta100.total_s

    def test_gtx1070_is_slowest(self):
        log = make_log(tx=500_000, size=64, distinct=1 << 30, threads=32768)
        times = {
            dev.name: CostModel(dev, l2_scale=1e-6).kernel_time(log).total_s
            for dev in (A100, RTX3090, GTX1070)
        }
        assert times[GTX1070.name] == max(times.values())


class TestCpuModels:
    def test_contiguous_layout_faster(self):
        ws = 1 << 28
        t_art = cpu_lookup_time(
            WORKSTATION_CPU, 6.0, 176.0, ws, contiguous=False, threads=1
        )
        t_flat = cpu_lookup_time(
            WORKSTATION_CPU, 6.0, 176.0, ws, contiguous=True, threads=1
        )
        assert t_flat < t_art

    def test_speedup_grows_with_working_set(self):
        def speedup(ws):
            a = cpu_lookup_time(WORKSTATION_CPU, 6.0, 176.0, ws, contiguous=False)
            c = cpu_lookup_time(WORKSTATION_CPU, 6.0, 176.0, ws, contiguous=True)
            return a / c

        assert speedup(1 << 30) > speedup(1 << 20)

    def test_threads_divide_lookup_time(self):
        t1 = cpu_lookup_time(WORKSTATION_CPU, 6.0, 176.0, 1 << 28,
                             contiguous=False, threads=1)
        t8 = cpu_lookup_time(WORKSTATION_CPU, 6.0, 176.0, 1 << 28,
                             contiguous=False, threads=8)
        assert t8 == pytest.approx(t1 / 8)

    def test_update_slower_than_lookup(self):
        lk = cpu_lookup_time(WORKSTATION_CPU, 6.0, 176.0, 1 << 28,
                             contiguous=False)
        up = cpu_update_time(WORKSTATION_CPU, 6.0, 176.0, 1 << 28,
                             contiguous=False)
        assert up > lk
