"""Unit tests for the SIMT helpers, PCIe model and pipeline algebra."""

import pytest

from repro.gpusim.pcie import PCIE3_X16, PCIE4_X16, link_for_device
from repro.gpusim.simt import occupancy_limit, warp_efficiency, warps_for, waves
from repro.gpusim.streams import PipelineStage, pipeline


class TestSimt:
    def test_warps_for(self):
        assert warps_for(1) == 1
        assert warps_for(32) == 1
        assert warps_for(33) == 2

    def test_full_efficiency(self):
        assert warp_efficiency([64, 64], 64) == pytest.approx(1.0)

    def test_tail_divergence(self):
        # half the threads finish after round 1
        eff = warp_efficiency([64, 32], 64)
        assert eff == pytest.approx(0.75)

    def test_empty_rounds(self):
        assert warp_efficiency([], 128) == 1.0

    def test_occupancy_limit(self):
        assert occupancy_limit(10_000, 2048) == 2048
        assert occupancy_limit(100, 2048) == 100

    def test_waves(self):
        assert waves(4096, 2048) == 2.0
        assert waves(100, 2048) == 1.0
        assert waves(0, 2048) == 0.0


class TestPcie:
    def test_transfer_time_zero(self):
        assert PCIE4_X16.transfer_time(0) == 0.0

    def test_transfer_includes_latency(self):
        assert PCIE4_X16.transfer_time(1) == pytest.approx(
            PCIE4_X16.latency_s + 1 / PCIE4_X16.bandwidth
        )

    def test_gen4_faster_than_gen3(self):
        n = 1 << 20
        assert PCIE4_X16.transfer_time(n) < PCIE3_X16.transfer_time(n)

    def test_link_selection(self):
        assert link_for_device("NVIDIA GTX1070") is PCIE3_X16
        assert link_for_device("NVIDIA A100 40GB") is PCIE4_X16


class TestPipeline:
    def test_bottleneck_selection(self):
        stages = [
            PipelineStage("a", 1e-3),
            PipelineStage("b", 5e-3),
            PipelineStage("c", 2e-3),
        ]
        res = pipeline(stages, 1000)
        assert res.bottleneck.name == "b"
        assert res.seconds_per_batch == 5e-3
        assert res.throughput_ops == pytest.approx(1000 / 5e-3)

    def test_parallelism_discounts_stage(self):
        stages = [PipelineStage("a", 8e-3, parallelism=8), PipelineStage("b", 2e-3)]
        res = pipeline(stages, 100)
        assert res.bottleneck.name == "b"

    def test_latency_is_sum(self):
        stages = [PipelineStage("a", 1e-3), PipelineStage("b", 2e-3)]
        assert pipeline(stages, 1).latency_s == pytest.approx(3e-3)

    def test_throughput_mops(self):
        res = pipeline([PipelineStage("a", 1e-3)], 10_000)
        assert res.throughput_mops == pytest.approx(10.0)
