"""Unit tests for the double-buffered stream scheduler (§4.1/4.3) and
the overlapped-batch closed form in the cost model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.gpusim.cost_model import overlapped_batch_time
from repro.gpusim.streams import StreamOverlapStats, StreamScheduler
from repro.host.config import EngineConfig
from repro.obs.metrics import MetricsRegistry

H2D, KERNEL, D2H = 1.0, 3.0, 0.5


def _submit_n(sched, n, *, h2d=H2D, kernel=KERNEL, d2h=D2H):
    return [
        sched.submit("lookup", h2d_s=h2d, kernel_s=kernel, d2h_s=d2h)
        for _ in range(n)
    ]


class TestStreamScheduler:
    def test_single_stream_fully_serializes(self):
        sched = StreamScheduler(1)
        _submit_n(sched, 4)
        stats = sched.drain()
        assert stats.makespan_s == pytest.approx(4 * (H2D + KERNEL + D2H))
        assert stats.saved_s == 0.0
        assert stats.overlap_ratio == 0.0

    def test_double_buffering_hides_transfers_kernel_bound(self):
        """Kernel-bound: steady state pays max(kernel, h2d) = kernel per
        batch; only the first h2d and last d2h stick out."""
        sched = StreamScheduler(2)
        events = _submit_n(sched, 5)
        stats = sched.drain()
        assert stats.makespan_s == pytest.approx(H2D + 5 * KERNEL + D2H)
        assert stats.serial_s == pytest.approx(5 * (H2D + KERNEL + D2H))
        assert stats.saved_s > 0
        # batch i+1's staging starts while batch i's kernel runs
        assert events[1].copy_start_s < events[0].done_s

    def test_transfer_bound_pipeline(self):
        """h2d > kernel: the copy engine is the bottleneck."""
        sched = StreamScheduler(2)
        _submit_n(sched, 5, h2d=3.0, kernel=1.0, d2h=0.0)
        stats = sched.drain()
        assert stats.makespan_s == pytest.approx(5 * 3.0 + 1.0)

    def test_buffer_limit_blocks_copy(self):
        """With n_streams buffers, batch i+n_streams cannot stage before
        batch i completes — more streams admit earlier staging."""
        few = StreamScheduler(2)
        many = StreamScheduler(8)
        ev_few = _submit_n(few, 6, h2d=0.1, kernel=2.0, d2h=1.0)
        ev_many = _submit_n(many, 6, h2d=0.1, kernel=2.0, d2h=1.0)
        assert ev_few[4].copy_start_s > ev_many[4].copy_start_s
        assert ev_few[2].copy_start_s >= ev_few[0].done_s

    def test_kernels_never_overlap_each_other(self):
        sched = StreamScheduler(4)
        events = _submit_n(sched, 6)
        for a, b in zip(events, events[1:]):
            assert b.kernel_start_s >= a.kernel_start_s + a.kernel_s

    def test_drain_resets_clocks(self):
        sched = StreamScheduler(2)
        _submit_n(sched, 3)
        first = sched.drain()
        assert first.batches == 3
        assert sched.pending == 0
        _submit_n(sched, 2)
        second = sched.drain()
        # a fresh window starts at t=0 again
        assert second.makespan_s == pytest.approx(H2D + 2 * KERNEL + D2H)

    def test_add_window_folds_sequential_windows(self):
        a = StreamOverlapStats(batches=2, serial_s=4.0, makespan_s=3.0)
        b = StreamOverlapStats(batches=1, serial_s=2.0, makespan_s=2.0)
        a.add_window(b)
        assert a.batches == 3
        assert a.serial_s == pytest.approx(6.0)
        assert a.makespan_s == pytest.approx(5.0)
        assert a.saved_s == pytest.approx(1.0)
        d = a.as_dict()
        assert d["batches"] == 3 and d["overlap_ratio"] > 0

    def test_metrics_counters(self):
        reg = MetricsRegistry()
        sched = StreamScheduler(2, metrics=reg)
        _submit_n(sched, 4)
        stats = sched.drain()
        assert reg.value("stream_batches_total") == 4
        assert reg.value("stream_overlap_saved_us_total") == pytest.approx(
            stats.saved_s * 1e6
        )

    def test_invalid_stream_count_rejected(self):
        with pytest.raises(ValueError):
            StreamScheduler(0)


class TestStatsFolds:
    """Edge cases of the two fold directions: sequential
    (``add_window``) and concurrent (``merge_parallel``), including the
    event-timeline bookkeeping the critical-path layer depends on."""

    def test_add_window_empty_into_empty(self):
        a, b = StreamOverlapStats(), StreamOverlapStats()
        a.add_window(b)
        assert a.batches == 0 and a.makespan_s == 0.0
        assert a.events == [] and a.window_starts == []

    def test_add_window_empty_window_adds_no_boundary(self):
        sched = StreamScheduler(2)
        _submit_n(sched, 2)
        a = sched.drain()
        a.add_window(StreamOverlapStats())  # barrier with no submissions
        _submit_n(sched, 3)
        a.add_window(sched.drain())
        # one boundary: the empty middle window must not split the
        # timeline (it has no events to slice out)
        assert a.window_starts == [2]
        assert len(a.events) == 5

    def test_add_window_event_offsets(self):
        sched = StreamScheduler(2)
        _submit_n(sched, 2)
        a = sched.drain()
        _submit_n(sched, 1)
        a.add_window(sched.drain())
        _submit_n(sched, 3)
        a.add_window(sched.drain())
        assert a.window_starts == [2, 3]
        assert len(a.events) == 6
        # each window keeps its own relative clock: every window's first
        # event stages at t=0
        for start in [0, *a.window_starts]:
            assert a.events[start].copy_start_s == 0.0

    def test_merge_parallel_zero_submission_sides(self):
        sched = StreamScheduler(2)
        _submit_n(sched, 3)
        a = sched.drain()
        span = a.makespan_s
        a.merge_parallel(StreamOverlapStats(streams=2))  # idle device
        assert a.makespan_s == pytest.approx(span)
        assert a.batches == 3
        # the idle side contributes no shard part — only real timelines
        assert len(a.shard_parts) == 1

        empty = StreamOverlapStats(streams=2)
        sched2 = StreamScheduler(2)
        _submit_n(sched2, 2)
        b = sched2.drain()
        empty.merge_parallel(b)
        assert empty.makespan_s == pytest.approx(b.makespan_s)
        assert len(empty.shard_parts) == 1
        assert empty.shard_parts[0].events == b.shard_parts[0].events \
            if b.shard_parts else True

    def test_merge_parallel_single_stream_degenerate(self):
        """n_streams=1 shards: the fold still maxes makespans and the
        captured parts keep the serial timelines."""
        parts = []
        for n in (2, 4):
            sched = StreamScheduler(1)
            _submit_n(sched, n)
            parts.append(sched.drain())
        merged = parts[0]
        merged.merge_parallel(parts[1])
        assert merged.makespan_s == pytest.approx(4 * (H2D + KERNEL + D2H))
        assert merged.streams == 2
        assert [p.streams for p in merged.shard_parts] == [1, 1]
        assert [len(p.events) for p in merged.shard_parts] == [2, 4]

    def test_merge_parallel_fold_associativity(self):
        """(a || b) || c and a || (b || c) agree numerically and
        capture the same per-device parts in the same order."""

        def _mk(n, kernel):
            sched = StreamScheduler(2)
            _submit_n(sched, n, kernel=kernel)
            return sched.drain()

        left = _mk(2, 1.0)
        left.merge_parallel(_mk(3, 2.0))
        left.merge_parallel(_mk(4, 3.0))

        right_tail = _mk(3, 2.0)
        right_tail.merge_parallel(_mk(4, 3.0))
        right = _mk(2, 1.0)
        right.merge_parallel(right_tail)

        assert left.makespan_s == pytest.approx(right.makespan_s)
        assert left.serial_s == pytest.approx(right.serial_s)
        assert left.batches == right.batches == 9
        assert left.streams == right.streams == 6
        assert [len(p.events) for p in left.shard_parts] == [2, 3, 4]
        assert [len(p.events) for p in right.shard_parts] == [2, 3, 4]
        for lp, rp in zip(left.shard_parts, right.shard_parts):
            assert lp.makespan_s == pytest.approx(rp.makespan_s)

    def test_merge_parallel_resets_own_timeline(self):
        """After a parallel fold the merged stats' flat timeline is
        empty — per-device history lives only in shard_parts, so a
        later sequential fold cannot mix clocks across devices."""
        sched = StreamScheduler(2)
        _submit_n(sched, 2)
        a = sched.drain()
        sched2 = StreamScheduler(2)
        _submit_n(sched2, 2)
        a.merge_parallel(sched2.drain())
        assert a.events == [] and a.window_starts == []
        assert len(a.shard_parts) == 2

    def test_as_dict_schema_unchanged_by_timelines(self):
        """The BENCH schema must not grow raw event lists."""
        sched = StreamScheduler(2)
        _submit_n(sched, 3)
        d = sched.drain().as_dict()
        assert sorted(d) == ["batches", "makespan_s", "overlap_ratio",
                             "saved_s", "serial_s", "streams"]


class TestOverlappedBatchTime:
    def test_serial_when_single_stream(self):
        assert overlapped_batch_time(3.0, 1.0, 0.5, streams=1) == \
            pytest.approx(4.5)

    def test_max_rule_with_streams(self):
        assert overlapped_batch_time(3.0, 1.0, 0.5) == pytest.approx(3.0)
        assert overlapped_batch_time(1.0, 3.0, 0.5) == pytest.approx(3.0)
        assert overlapped_batch_time(1.0, 0.5, 3.0) == pytest.approx(3.0)

    def test_agrees_with_scheduler_steady_state(self):
        """The closed form is the scheduler's asymptotic per-batch cost."""
        sched = StreamScheduler(2)
        n = 200
        _submit_n(sched, n)
        stats = sched.drain()
        per_batch = stats.makespan_s / n
        assert per_batch == pytest.approx(
            overlapped_batch_time(KERNEL, H2D, D2H, streams=2), rel=0.05
        )


class TestEngineConfigStreams:
    def test_default_is_double_buffered(self):
        assert EngineConfig().streams == 2

    def test_zero_streams_rejected(self):
        with pytest.raises(SimulationError):
            EngineConfig(streams=0)
