"""Unit tests for kernel trace reports."""

import pytest

from repro.bench.runner import cuart_lookup_log, grt_lookup_log
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import RTX3090
from repro.gpusim.trace import compare_kernels, trace_kernel


@pytest.fixture(scope="module")
def logs():
    return (
        cuart_lookup_log("random", 2048, 8, 512),
        grt_lookup_log("random", 2048, 8, 512),
    )


class TestTraceKernel:
    def test_report_fields(self, logs):
        cu, _ = logs
        rep = trace_kernel(cu, CostModel(RTX3090))
        assert rep.queries == 512
        assert 0.0 <= rep.l2_fraction <= 1.0
        assert rep.timing.total_s > 0
        assert rep.rows_by_class
        assert rep.rows_by_round

    def test_class_rows_sorted_by_count(self, logs):
        cu, _ = logs
        rep = trace_kernel(cu, CostModel(RTX3090))
        counts = [r[2] for r in rep.rows_by_class]
        assert counts == sorted(counts, reverse=True)

    def test_render(self, logs):
        cu, _ = logs
        text = str(trace_kernel(cu, CostModel(RTX3090)))
        assert "kernel total" in text
        assert "by dependent round" in text
        assert "L2-resident" in text

    def test_round_count_matches_log(self, logs):
        cu, _ = logs
        rep = trace_kernel(cu, CostModel(RTX3090))
        assert len(rep.rows_by_round) == cu.dependent_rounds


class TestCompareKernels:
    def test_side_by_side(self, logs):
        cu, gr = logs
        text = compare_kernels(
            {"CuART": cu, "GRT": gr}, CostModel(RTX3090), 512
        )
        assert "CuART" in text and "GRT" in text
        assert "tx/query" in text
