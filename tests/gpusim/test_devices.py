"""Unit tests for device/CPU specs — the §4.1 machine table in code."""

import pytest

from repro.gpusim.devices import (
    A100,
    DEVICES,
    GTX1070,
    MACHINES,
    NOTEBOOK_CPU,
    RTX3090,
    SERVER_CPU,
    WORKSTATION_CPU,
)


class TestMachineTable:
    """Section 4.1 lists three benchmark machines; encode them exactly."""

    def test_three_machines(self):
        assert set(MACHINES) == {"server", "workstation", "notebook"}

    def test_server_pairs_a100_with_epyc(self):
        gpu, cpu = MACHINES["server"]
        assert gpu is A100
        assert "Epyc" in cpu.name
        assert cpu.cores == 96  # 2x 48-core (7752)

    def test_workstation_pairs_3090_with_ryzen(self):
        gpu, cpu = MACHINES["workstation"]
        assert gpu is RTX3090
        assert "5800X" in cpu.name

    def test_notebook_pairs_1070(self):
        gpu, cpu = MACHINES["notebook"]
        assert gpu is GTX1070
        assert "8750H" in cpu.name

    def test_devices_registry(self):
        assert set(DEVICES) == {"a100", "rtx3090", "gtx1070"}


class TestGpuSpecs:
    def test_memory_subsystems_attached(self):
        assert "HBM2" in A100.memory.name
        assert "GDDR6X" in RTX3090.memory.name
        assert "GDDR5" in GTX1070.memory.name

    def test_resident_thread_capacity_ordering(self):
        # A100 (108 SMs) > 3090 (82) > 1070 (15)
        assert (
            A100.max_resident_threads
            > RTX3090.max_resident_threads
            > GTX1070.max_resident_threads
        )

    def test_l2_sizes(self):
        assert A100.l2_bytes == 40 * 1024 * 1024
        assert A100.l2_bytes > RTX3090.l2_bytes > GTX1070.l2_bytes

    def test_describe(self):
        assert "HBM2" in A100.describe()


class TestCpuSpecs:
    def test_thread_counts(self):
        assert SERVER_CPU.threads == 192
        assert WORKSTATION_CPU.threads == 16
        assert NOTEBOOK_CPU.threads == 12

    def test_cache_hierarchy_monotone(self):
        for cpu in (SERVER_CPU, WORKSTATION_CPU, NOTEBOOK_CPU):
            assert cpu.l1_bytes < cpu.l2_bytes < cpu.l3_bytes
            assert cpu.l1_latency_s < cpu.l2_latency_s < cpu.l3_latency_s
            assert cpu.l3_latency_s < cpu.dram_latency_s()

    def test_node_compute_cycles_from_paper(self):
        # "at around 20 clock cycles per node" (section 3.1)
        assert WORKSTATION_CPU.node_compute_cycles == 20.0

    def test_describe(self):
        assert "96c/192t" in SERVER_CPU.describe()
