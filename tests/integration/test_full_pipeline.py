"""Cross-module integration tests: the three implementations must agree
with each other and with a dict model through full lifecycles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.verify import verify_tree
from repro.constants import NIL_VALUE
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import lookup_batch
from repro.cuart.update import UpdateEngine
from repro.errors import HashTableFullError
from repro.grt.kernel import grt_lookup_batch
from repro.grt.layout import GrtLayout
from repro.host.engine import CuartEngine, GrtEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.util.keys import keys_to_matrix
from repro.workloads import (
    QueryMix,
    btc_like_keys,
    build_tree,
    lookup_queries,
    mixed_queries,
    random_keys,
)


class TestThreeWayAgreement:
    @pytest.mark.parametrize("kind", ["random", "btc"])
    def test_host_cuart_grt_agree(self, kind):
        if kind == "random":
            keys = random_keys(2500, 12, seed=91)
        else:
            keys = btc_like_keys(2500, seed=91)
        tree = build_tree(keys)
        cu = CuartLayout(tree)
        gr = GrtLayout(tree)
        probes = lookup_queries(keys, 1500, hit_rate=0.7, seed=92)
        mat, lens = keys_to_matrix(probes)
        a = lookup_batch(cu, mat, lens)
        b = grt_lookup_batch(gr, mat, lens)
        assert (a.values == b.values).all()
        for q, v in zip(probes[:200], a.values[:200]):
            host = tree.search(q)
            got = None if int(v) == NIL_VALUE else int(v)
            assert got == host


class TestEngineLifecycle:
    def test_full_crud_lifecycle_matches_dict(self):
        keys = random_keys(1200, 8, seed=93)
        model = {k: i for i, k in enumerate(keys)}
        eng = CuartEngine(batch_size=256, spare=0.5, root_table_depth=2)
        eng.populate(model.items())
        eng.map_to_device()

        # updates
        ups = [(keys[i], 10_000 + i) for i in range(0, 400, 3)]
        eng.update(ups)
        model.update(ups)
        # deletions
        dels = keys[700:760]
        eng.delete(dels)
        for k in dels:
            model.pop(k)
        # inserts (device path + possible remap)
        news = [k for k in random_keys(150, 8, seed=94) if k not in model]
        eng.insert([(k, 70_000 + i) for i, k in enumerate(news)])
        model.update({k: 70_000 + i for i, k in enumerate(news)})

        # everything agrees
        probe = list(model) + dels
        got = eng.lookup(probe)
        assert got == [model.get(k) for k in probe]
        # host tree structurally sound
        assert verify_tree(eng.tree) == []
        # a final remap preserves content exactly
        eng.map_to_device()
        got2 = eng.lookup(probe)
        assert got2 == got

    def test_mixed_stream_then_verify(self):
        keys = random_keys(800, 8, seed=95)
        eng = CuartEngine(batch_size=128, spare=0.25)
        eng.populate((k, i) for i, k in enumerate(keys))
        eng.map_to_device()
        stream = mixed_queries(keys, 600, QueryMix(), seed=96)
        MixedWorkloadExecutor(eng).run(stream)
        assert verify_tree(eng.tree) == []
        # engine still serves correct answers for survivors
        deleted = {p for kind, p in stream if kind == "delete"}
        survivors = [k for k in keys if k not in deleted][:100]
        got = eng.lookup(survivors)
        assert all(v is not None for v in got)

    def test_serialize_after_mutations(self, tmp_path):
        from repro.cuart.serialize import load_layout, save_layout

        keys = random_keys(600, 8, seed=97)
        eng = CuartEngine(batch_size=128, spare=0.5)
        eng.populate((k, i) for i, k in enumerate(keys))
        eng.map_to_device()
        eng.update([(keys[0], 123)])
        eng.delete([keys[1]])
        eng.insert([(b"\xfb" * 8, 456)])
        path = tmp_path / "mutated.npz"
        save_layout(eng.layout, path)
        loaded = load_layout(path)
        mat, lens = keys_to_matrix([keys[0], keys[1], b"\xfb" * 8], width=8)
        res = lookup_batch(loaded, mat, lens)
        assert int(res.values[0]) == 123
        assert int(res.values[1]) == NIL_VALUE
        assert int(res.values[2]) == 456


class TestFailureInjection:
    def test_update_hash_table_overflow_raises(self):
        keys = random_keys(600, 8, seed=98)
        tree = build_tree(keys)
        layout = CuartLayout(tree)
        eng = UpdateEngine(layout, hash_slots=256)  # 600 distinct > 256
        mat, lens = keys_to_matrix(keys)
        with pytest.raises(HashTableFullError):
            eng.apply(mat, lens, np.arange(600).astype(np.uint64))

    def test_insert_capacity_exhaustion_is_clean(self):
        from repro.cuart.insert import InsertEngine

        keys = random_keys(400, 8, seed=99)
        tree = build_tree(keys)
        layout = CuartLayout(tree, spare=0.0)  # no headroom at all
        eng = InsertEngine(layout, hash_slots=1 << 10)
        news = [k for k in random_keys(100, 8, seed=100) if k not in set(keys)]
        mat, lens = keys_to_matrix(news, width=8)
        res = eng.apply(mat, lens, np.arange(len(news)).astype(np.uint64))
        assert res.n_inserted == 0
        assert res.n_deferred == len(news)
        # the layout still answers the original keys perfectly
        omat, olens = keys_to_matrix(keys)
        check = lookup_batch(layout, omat, olens)
        assert check.values.tolist() == list(range(len(keys)))

    def test_engine_survives_total_defer_via_remap(self):
        eng = CuartEngine(batch_size=128, spare=0.0)
        eng.populate([(b"left0001", 1), (b"right002", 2)])
        eng.map_to_device()
        out = eng.insert([(b"middle03", 3)])
        assert out.summary["remapped"]
        assert eng.lookup([b"left0001", b"middle03"]) == [1, 3]


@settings(max_examples=15, deadline=None)
@given(
    st.dictionaries(st.binary(min_size=4, max_size=4), st.integers(0, 2**30),
                    min_size=2, max_size=60),
    st.data(),
)
def test_engine_matches_dict_model_property(pairs, data):
    eng = CuartEngine(batch_size=128, spare=0.5)
    eng.populate(pairs.items())
    eng.map_to_device()
    model = dict(pairs)
    ops = data.draw(
        st.lists(
            st.tuples(
                st.sampled_from(["update", "delete", "insert"]),
                st.binary(min_size=4, max_size=4),
                st.integers(0, 2**30),
            ),
            max_size=20,
        )
    )
    for kind, key, value in ops:
        if kind == "update":
            found = eng.update([(key, value)])
            if found[0]:
                model[key] = value
        elif kind == "delete":
            found = eng.delete([key])
            if found[0]:
                model.pop(key, None)
        else:
            eng.insert([(key, value)])
            model[key] = value
    probes = sorted(set(model) | {k for _, k, _ in ops})
    assert eng.lookup(probes) == [model.get(k) for k in probes]
