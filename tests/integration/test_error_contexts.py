"""Structured error context through the public API.

Every error the engine raises must carry machine-readable context
(``exc.context``) naming the op, the offending input and the saturated
buffer — and render it into the message — so operators can act on a
traceback without a debugger.
"""

from __future__ import annotations

import pytest

from repro.constants import MAX_SHORT_KEY, NIL_VALUE
from repro.cuart.layout import LongKeyStrategy
from repro.errors import (
    HashTableFullError,
    KeyEncodingError,
    KeyTooLongError,
    SimulationError,
    StaleLayoutError,
    TransientKernelError,
)
from repro.gpusim.faults import FaultConfig
from repro.host.config import EngineConfig
from repro.host.engine import CuartEngine
from tests.conftest import int_keys


def _mapped_engine(n=32, **kwargs):
    eng = CuartEngine(**kwargs)
    keys = int_keys(range(n))
    eng.populate([(k, i) for i, k in enumerate(keys)])
    eng.map_to_device()
    return eng, keys


class TestKeyTooLong:
    def test_map_time_context(self):
        eng = CuartEngine(long_keys=LongKeyStrategy.ERROR)
        long_key = b"x" * (MAX_SHORT_KEY + 3) + b"\x00"
        eng.populate([(long_key, 1)])
        with pytest.raises(KeyTooLongError) as ei:
            eng.map_to_device()
        ctx = ei.value.context
        assert ctx["key_len"] == len(long_key)
        assert ctx["max_len"] == MAX_SHORT_KEY
        assert ctx["strategy"] == "ERROR"
        # context renders into the human-readable message too
        assert "key_len=" in str(ei.value)


class TestStaleLayout:
    def test_versions_in_context(self):
        eng, keys = _mapped_engine()
        mapped_version = eng.tree.version
        eng.tree.insert(int_keys([10_000])[0], 1)  # behind the engine's back
        with pytest.raises(StaleLayoutError) as ei:
            eng.lookup(keys[:4])
        ctx = ei.value.context
        assert ctx["mapped_version"] == mapped_version
        assert ctx["tree_version"] == eng.tree.version
        assert ctx["tree_version"] > ctx["mapped_version"]
        assert ei.value.transient is False


class TestHashTableFull:
    def test_genuine_capacity_pressure_names_the_buffer(self):
        # 8 slots cannot dedup hundreds of distinct keys; without a
        # resilience policy the capacity error must surface structured
        eng, keys = _mapped_engine(n=500, hash_slots=8)
        with pytest.raises(HashTableFullError) as ei:
            eng.update([(k, 1) for k in keys])
        ctx = ei.value.context
        assert ctx["buffer"] == "hash-table"
        assert ctx["slots"] == 8
        assert ctx["occupied"] <= 8
        assert ctx["requested"] >= 1
        assert ei.value.transient is False  # genuine, not injected


class TestKeyEncoding:
    def test_non_bytes_key(self):
        eng = CuartEngine()
        with pytest.raises(KeyEncodingError) as ei:
            eng.populate([("not-bytes", 1)])
        assert ei.value.context["got"] == "str"

    def test_empty_key(self):
        eng = CuartEngine()
        with pytest.raises(KeyEncodingError) as ei:
            eng.populate([(b"", 1)])
        assert ei.value.context["key_len"] == 0

    def test_non_int_value(self):
        eng = CuartEngine()
        with pytest.raises(KeyEncodingError) as ei:
            eng.populate([(b"k\x00", "v")])
        assert ei.value.context["got"] == "str"

    def test_out_of_range_value(self):
        eng = CuartEngine()
        with pytest.raises(KeyEncodingError) as ei:
            eng.populate([(b"k\x00", NIL_VALUE)])
        assert ei.value.context["value"] == NIL_VALUE


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs, bad",
        [
            ({"batch_size": 0}, 0),
            ({"host_threads": -1}, -1),
            ({"hash_slots": 100}, 100),
            ({"spare": -0.5}, -0.5),
            ({"cache_size": -1}, -1),
            ({"root_table_depth": 7}, 7),
        ],
    )
    def test_bad_value_lands_in_context(self, kwargs, bad):
        with pytest.raises(SimulationError) as ei:
            EngineConfig(**kwargs)
        assert ei.value.context["value"] == bad
        # the engine's kwargs form routes through the same validation
        with pytest.raises(SimulationError):
            CuartEngine(**kwargs)

    def test_unknown_kwarg_is_typeerror(self):
        # benchmarks feature-detect by catching TypeError; keep it
        with pytest.raises(TypeError):
            CuartEngine(no_such_option=1)

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError):
            CuartEngine(EngineConfig(), batch_size=64)


class TestFaultsWithoutResilience:
    def test_device_fault_propagates_with_context(self):
        # injection configured but no policy: the pre-PR-4 contract is
        # that the fault surfaces at the call site, fully annotated
        eng, keys = _mapped_engine(
            faults=FaultConfig(kernel_abort_rate=1.0, seed=5)
        )
        with pytest.raises(TransientKernelError) as ei:
            eng.lookup(keys[:4])
        ctx = ei.value.context
        assert ctx["fault"] == "kernel_abort"
        assert ctx["op"] == "lookup"
        assert ei.value.transient
