"""Heavier randomized lifecycles: interleaved device updates, deletes
and inserts against a sequential oracle, with structural verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.verify import verify_tree
from repro.constants import NIL_VALUE
from repro.cuart.delete import delete_batch
from repro.cuart.insert import InsertEngine
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import lookup_batch
from repro.cuart.update import UpdateEngine
from repro.util.keys import keys_to_matrix
from repro.workloads import build_tree, random_keys

from tests.conftest import make_tree


def read_all(layout, keys, table=None):
    mat, lens = keys_to_matrix(keys)
    res = lookup_batch(layout, mat, lens, root_table=table)
    return [None if int(v) == NIL_VALUE else int(v) for v in res.values]


class TestInterleavedBatches:
    def test_update_delete_update_sequence(self):
        keys = random_keys(500, 8, seed=161)
        lay = CuartLayout(build_tree(keys))
        upd = UpdateEngine(lay, hash_slots=1 << 10)
        model = {k: i for i, k in enumerate(keys)}

        # round 1: update a slice
        mat, lens = keys_to_matrix(keys[:100])
        upd.apply(mat, lens, np.arange(1000, 1100).astype(np.uint64))
        model.update({k: 1000 + i for i, k in enumerate(keys[:100])})
        # round 2: delete an overlapping slice
        mat, lens = keys_to_matrix(keys[50:150])
        delete_batch(lay, mat, lens, hash_slots=1 << 10)
        for k in keys[50:150]:
            model.pop(k)
        # round 3: update across live and dead keys
        mat, lens = keys_to_matrix(keys[120:200])
        res = upd.apply(mat, lens, np.arange(2000, 2080).astype(np.uint64))
        for i, k in enumerate(keys[120:200]):
            if k in model:
                model[k] = 2000 + i
        # deleted keys must not resurrect through updates
        assert res.found[:30].sum() == 0  # keys 120..149 are deleted

        got = read_all(lay, keys)
        assert got == [model.get(k) for k in keys]

    def test_mixed_update_and_delete_in_one_batch(self):
        keys = random_keys(200, 8, seed=162)
        lay = CuartLayout(build_tree(keys))
        upd = UpdateEngine(lay, hash_slots=1 << 9)
        mat, lens = keys_to_matrix(keys[:50])
        deletes = np.zeros(50, dtype=bool)
        deletes[::2] = True
        upd.apply(mat, lens, np.arange(50).astype(np.uint64), deletes=deletes)
        got = read_all(lay, keys[:50])
        for i in range(50):
            assert got[i] == (None if i % 2 == 0 else i)

    def test_insert_after_delete_reuses_space(self):
        keys = random_keys(300, 8, seed=163)
        lay = CuartLayout(build_tree(keys), spare=0.0)
        mat, lens = keys_to_matrix(keys[:40])
        delete_batch(lay, mat, lens, hash_slots=1 << 9)
        freed = sum(len(v) for v in lay.free_leaves.values())
        assert freed > 0
        fresh = [k for k in random_keys(freed, 8, seed=164)
                 if k not in set(keys)][:freed]
        eng = InsertEngine(lay, hash_slots=1 << 9)
        mat, lens = keys_to_matrix(fresh)
        res = eng.apply(mat, lens, np.arange(len(fresh)).astype(np.uint64))
        # the recycled slots (and only those) could host the new keys
        assert res.n_inserted > 0
        assert res.n_inserted <= freed


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31), st.integers(2, 5))
def test_engine_storm_against_model(seed, rounds):
    """Multi-round random CRUD through the engine vs a dict, verifying
    the host tree's structural invariants each round."""
    from repro.host.engine import CuartEngine

    rng = np.random.default_rng(seed)
    keys = random_keys(250, 6, seed=seed)
    eng = CuartEngine(batch_size=128, spare=0.5)
    eng.populate((k, i) for i, k in enumerate(keys))
    eng.map_to_device()
    model = {k: i for i, k in enumerate(keys)}
    pool = list(keys)

    for _ in range(rounds):
        op = rng.choice(3)
        sample = [pool[int(i)] for i in rng.integers(0, len(pool), size=20)]
        if op == 0:
            vals = [int(v) for v in rng.integers(0, 2**30, size=20)]
            found = eng.update(list(zip(sample, vals)))
            for k, v, f in zip(sample, vals, found):
                if f:
                    model[k] = v
        elif op == 1:
            found = eng.delete(sample)
            for k, f in zip(sample, found):
                if f:
                    model.pop(k, None)
        else:
            fresh = bytes(rng.integers(0, 256, size=6).astype(np.uint8))
            if not any(
                fresh != o and (fresh.startswith(o) or o.startswith(fresh))
                for o in model
            ):
                eng.insert([(fresh, 99)])
                model[fresh] = 99
                pool.append(fresh)
        assert verify_tree(eng.tree) == []
    probes = sorted(set(pool))
    assert eng.lookup(probes) == [model.get(k) for k in probes]
