"""Lockstep fault-injection soak (the PR-4 acceptance oracle).

Two identical seeded mixed-workload runs — one against a device that
injects transient faults on ~1% of guarded events, one fault-free — must
produce the same query results and converge to *byte-identical* mapped
layouts.  This is the strongest statement the resilience layer can make:
every retry replayed exactly-once, every degraded write was reconciled,
no fault leaked into the data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.faults import FaultConfig
from repro.host.config import EngineConfig
from repro.host.engine import CuartEngine
from repro.host.memtable import Memtable, MemtableConfig
from repro.host.mixed import MixedWorkloadExecutor
from repro.host.resilience import ResiliencePolicy
from repro.workloads.queries import QueryMix, mixed_queries
from repro.workloads.synthetic import dense_keys

N_OPS = 50_000
N_KEYS = 2_000
FAULT_RATE = 0.01


def _run(faults, resilience):
    keys = dense_keys(N_KEYS)
    eng = CuartEngine(EngineConfig(
        batch_size=256, faults=faults, resilience=resilience,
    ))
    eng.populate([(k, i) for i, k in enumerate(keys)])
    eng.map_to_device()
    stream = mixed_queries(keys, N_OPS, QueryMix(), seed=7)
    results, report = MixedWorkloadExecutor(eng).run(stream)
    return eng, results, report


@pytest.fixture(scope="module")
def soak():
    faulty = _run(
        FaultConfig.uniform(FAULT_RATE, seed=1234), ResiliencePolicy()
    )
    oracle = _run(None, None)
    return faulty, oracle


def test_soak_completes_without_failed_ops(soak):
    (eng, _, report), _ = soak
    assert report.operations == N_OPS
    assert report.ops_by_status.get("FAILED", 0) == 0
    # the injector actually fired — otherwise this test proves nothing
    assert eng._injector.total_injected > 0
    # and the resilience layer actually worked for it
    assert report.ops_by_status.get("RETRIED", 0) > 0


def test_soak_results_match_fault_free_oracle(soak):
    (_, faulty_results, _), (_, oracle_results, _) = soak
    assert len(faulty_results) == len(oracle_results)
    assert faulty_results == oracle_results


def test_soak_hit_accounting_matches_oracle(soak):
    (_, _, faulty), (_, _, oracle) = soak
    assert faulty.hits == oracle.hits
    assert faulty.misses == oracle.misses
    assert faulty.update_misses == oracle.update_misses
    assert faulty.delete_misses == oracle.delete_misses


def test_soak_tree_is_byte_identical_to_oracle(soak, tmp_path):
    (faulty_eng, _, _), (oracle_eng, _, _) = soak
    assert len(faulty_eng.tree) == len(oracle_eng.tree)
    assert list(faulty_eng.tree.items()) == list(oracle_eng.tree.items())
    # strongest form: re-map both trees and compare the serialized
    # device buffers array for array
    faulty_eng.map_to_device()
    oracle_eng.map_to_device()
    fp, op = tmp_path / "faulty.npz", tmp_path / "oracle.npz"
    faulty_eng.save(fp)
    oracle_eng.save(op)
    with np.load(fp) as fz, np.load(op) as oz:
        assert sorted(fz.files) == sorted(oz.files)
        for name in fz.files:
            assert np.array_equal(fz[name], oz[name]), name


def test_soak_is_deterministic():
    """Same seeds -> same injected-fault schedule and same statuses."""
    a_eng, _, a_rep = _run(
        FaultConfig.uniform(FAULT_RATE, seed=99), ResiliencePolicy()
    )
    b_eng, _, b_rep = _run(
        FaultConfig.uniform(FAULT_RATE, seed=99), ResiliencePolicy()
    )
    assert a_eng._injector.snapshot() == b_eng._injector.snapshot()
    assert a_rep.ops_by_status == b_rep.ops_by_status


# -- PR 10: log-structured write absorption under faults -----------------


def _memtable_run(faults, resilience, *, memtable, n_ops=12_000):
    keys = dense_keys(1_000)
    eng = CuartEngine(EngineConfig(
        batch_size=256, faults=faults, resilience=resilience,
    ))
    eng.populate([(k, i) for i, k in enumerate(keys)])
    eng.map_to_device()
    stream = mixed_queries(keys, n_ops, QueryMix(), seed=21)
    ex = MixedWorkloadExecutor(eng, memtable=memtable)
    results, report = ex.run(stream)
    return eng, results, report


def test_memtable_soak_matches_fault_free_oracle(tmp_path):
    """The absorb/fold/compact path under ~1% injected faults must stay
    lockstep with a fault-free synchronous run: identical per-op
    results, identical surviving content."""
    mt_cfg = MemtableConfig(segment_ops=64, max_debt=2)
    faulty_eng, faulty_res, faulty_rep = _memtable_run(
        FaultConfig.uniform(FAULT_RATE, seed=4321), ResiliencePolicy(),
        memtable=mt_cfg,
    )
    oracle_eng, oracle_res, _ = _memtable_run(
        None, None, memtable=None,
    )
    assert faulty_eng._injector.total_injected > 0
    assert faulty_rep.ops_by_status.get("FAILED", 0) == 0
    assert faulty_res == oracle_res
    assert (sorted(faulty_eng.tree.items())
            == sorted(oracle_eng.tree.items()))


def test_open_circuit_write_burst_replays_exactly_once():
    """Degrade interaction: while the circuit is open, a write burst
    absorbs at host speed with compaction *deferred* (the debt is the
    replay log, nothing scatters into the degraded CPU path); when the
    circuit closes, one trigger drains the whole debt exactly once."""
    keys = dense_keys(400)
    eng = CuartEngine(EngineConfig(
        batch_size=64, resilience=ResiliencePolicy(),
    ))
    eng.populate([(k, i) for i, k in enumerate(keys)])
    eng.map_to_device()
    mt = Memtable(eng, MemtableConfig(segment_ops=16, max_debt=1))
    health = eng.device_health
    for _ in range(health.unhealthy_after):
        health.mark_failure()
    assert not health.healthy

    # the burst acks host-side; debt piles up past the budget but
    # nothing is dispatched while the circuit is open
    burst = keys[:200]
    for i, k in enumerate(burst):
        assert mt.absorb_update(k, 100_000 + i) is True
    mt.absorb_delete(keys[250])
    assert mt.debt > mt.config.max_debt
    assert not mt.should_compact()
    assert mt.compact() is None  # deferred, not dropped
    assert mt.compactions == 0 and mt.dispatched_rows == 0

    # reads stay correct from the delta + last installed layout
    assert mt.read(burst[0]) == (True, 100_000)
    assert mt.read(keys[250]) == (False, None)
    assert mt.read(keys[300]) is None  # no pending effect: device key

    # circuit closes -> the next trigger drains the debt exactly once
    health.recover()
    assert mt.should_compact()
    assert mt.compact() is not None
    assert mt.compactions == 1
    assert mt.debt == 0
    mt.compact(force=True)  # drain the still-active tail segment

    expected = {k: i for i, k in enumerate(keys)}
    for i, k in enumerate(burst):
        expected[k] = 100_000 + i
    del expected[keys[250]]
    got = {
        k: v for k, v in zip(keys, eng.lookup(list(keys)))
        if v is not None
    }
    assert got == expected


def test_open_circuit_burst_through_executor():
    """Same scenario end-to-end through the mixed executor: an open
    circuit suppresses every debt-triggered compaction (only the
    end-of-run forced drain dispatches), and the final content still
    matches a serial replay."""
    keys = dense_keys(300)
    eng = CuartEngine(EngineConfig(
        batch_size=64, resilience=ResiliencePolicy(),
    ))
    eng.populate([(k, i) for i, k in enumerate(keys)])
    eng.map_to_device()
    for _ in range(eng.device_health.unhealthy_after):
        eng.device_health.mark_failure()

    # 90%-write burst; max_debt=0 would compact constantly when healthy
    rng = np.random.default_rng(33)
    stream = []
    for i in range(600):
        k = keys[int(rng.integers(len(keys)))]
        if rng.random() < 0.9:
            stream.append(("update", (k, 200_000 + i)))
        else:
            stream.append(("lookup", k))
    ex = MixedWorkloadExecutor(
        eng, memtable=MemtableConfig(segment_ops=8, max_debt=0)
    )
    results, report = ex.run(stream)

    # every mid-stream trigger deferred: exactly the one forced drain
    assert report.compactions == 1
    assert sum(report.absorbed.values()) > 0

    state = {k: i for i, k in enumerate(keys)}
    expected = []
    for kind, payload in stream:
        if kind == "lookup":
            expected.append(state.get(payload))
        else:
            if payload[0] in state:
                state[payload[0]] = payload[1]
    assert results == expected
    got = {
        k: v for k, v in zip(keys, eng.lookup(list(keys)))
        if v is not None
    }
    assert got == state
