"""Lockstep fault-injection soak (the PR-4 acceptance oracle).

Two identical seeded mixed-workload runs — one against a device that
injects transient faults on ~1% of guarded events, one fault-free — must
produce the same query results and converge to *byte-identical* mapped
layouts.  This is the strongest statement the resilience layer can make:
every retry replayed exactly-once, every degraded write was reconciled,
no fault leaked into the data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.faults import FaultConfig
from repro.host.config import EngineConfig
from repro.host.engine import CuartEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.host.resilience import ResiliencePolicy
from repro.workloads.queries import QueryMix, mixed_queries
from repro.workloads.synthetic import dense_keys

N_OPS = 50_000
N_KEYS = 2_000
FAULT_RATE = 0.01


def _run(faults, resilience):
    keys = dense_keys(N_KEYS)
    eng = CuartEngine(EngineConfig(
        batch_size=256, faults=faults, resilience=resilience,
    ))
    eng.populate([(k, i) for i, k in enumerate(keys)])
    eng.map_to_device()
    stream = mixed_queries(keys, N_OPS, QueryMix(), seed=7)
    results, report = MixedWorkloadExecutor(eng).run(stream)
    return eng, results, report


@pytest.fixture(scope="module")
def soak():
    faulty = _run(
        FaultConfig.uniform(FAULT_RATE, seed=1234), ResiliencePolicy()
    )
    oracle = _run(None, None)
    return faulty, oracle


def test_soak_completes_without_failed_ops(soak):
    (eng, _, report), _ = soak
    assert report.operations == N_OPS
    assert report.ops_by_status.get("FAILED", 0) == 0
    # the injector actually fired — otherwise this test proves nothing
    assert eng._injector.total_injected > 0
    # and the resilience layer actually worked for it
    assert report.ops_by_status.get("RETRIED", 0) > 0


def test_soak_results_match_fault_free_oracle(soak):
    (_, faulty_results, _), (_, oracle_results, _) = soak
    assert len(faulty_results) == len(oracle_results)
    assert faulty_results == oracle_results


def test_soak_hit_accounting_matches_oracle(soak):
    (_, _, faulty), (_, _, oracle) = soak
    assert faulty.hits == oracle.hits
    assert faulty.misses == oracle.misses
    assert faulty.update_misses == oracle.update_misses
    assert faulty.delete_misses == oracle.delete_misses


def test_soak_tree_is_byte_identical_to_oracle(soak, tmp_path):
    (faulty_eng, _, _), (oracle_eng, _, _) = soak
    assert len(faulty_eng.tree) == len(oracle_eng.tree)
    assert list(faulty_eng.tree.items()) == list(oracle_eng.tree.items())
    # strongest form: re-map both trees and compare the serialized
    # device buffers array for array
    faulty_eng.map_to_device()
    oracle_eng.map_to_device()
    fp, op = tmp_path / "faulty.npz", tmp_path / "oracle.npz"
    faulty_eng.save(fp)
    oracle_eng.save(op)
    with np.load(fp) as fz, np.load(op) as oz:
        assert sorted(fz.files) == sorted(oz.files)
        for name in fz.files:
            assert np.array_equal(fz[name], oz[name]), name


def test_soak_is_deterministic():
    """Same seeds -> same injected-fault schedule and same statuses."""
    a_eng, _, a_rep = _run(
        FaultConfig.uniform(FAULT_RATE, seed=99), ResiliencePolicy()
    )
    b_eng, _, b_rep = _run(
        FaultConfig.uniform(FAULT_RATE, seed=99), ResiliencePolicy()
    )
    assert a_eng._injector.snapshot() == b_eng._injector.snapshot()
    assert a_rep.ops_by_status == b_rep.ops_by_status
