"""Cross-cutting error-path tests: every device operation must refuse a
stale layout, and documented doctest examples must hold."""

import doctest

import numpy as np
import pytest

from repro.cuart.layout import CuartLayout
from repro.errors import StaleLayoutError
from repro.util.keys import keys_to_matrix
from repro.workloads import build_tree, random_keys


@pytest.fixture()
def stale_layout():
    keys = random_keys(200, 8, seed=171)
    tree = build_tree(keys)
    layout = CuartLayout(tree, spare=0.25)
    tree.insert(b"\xef" * 8, 1)  # structural change after mapping
    return layout, keys


class TestStaleLayoutRefusal:
    def test_lookup_refuses(self, stale_layout):
        from repro.cuart.lookup import lookup_batch

        layout, keys = stale_layout
        mat, lens = keys_to_matrix(keys[:4])
        with pytest.raises(StaleLayoutError):
            lookup_batch(layout, mat, lens)

    def test_update_refuses(self, stale_layout):
        from repro.cuart.update import UpdateEngine

        layout, keys = stale_layout
        mat, lens = keys_to_matrix(keys[:4])
        with pytest.raises(StaleLayoutError):
            UpdateEngine(layout, hash_slots=256).apply(
                mat, lens, np.arange(4).astype(np.uint64)
            )

    def test_delete_refuses(self, stale_layout):
        from repro.cuart.delete import delete_batch

        layout, keys = stale_layout
        mat, lens = keys_to_matrix(keys[:4])
        with pytest.raises(StaleLayoutError):
            delete_batch(layout, mat, lens, hash_slots=256)

    def test_insert_refuses(self, stale_layout):
        from repro.cuart.insert import InsertEngine

        layout, keys = stale_layout
        mat, lens = keys_to_matrix([b"\xee" * 8])
        with pytest.raises(StaleLayoutError):
            InsertEngine(layout, hash_slots=256).apply(
                mat, lens, np.array([1], dtype=np.uint64)
            )

    def test_range_refuses(self, stale_layout):
        from repro.cuart.range_query import count_range, range_query

        layout, keys = stale_layout
        with pytest.raises(StaleLayoutError):
            range_query(layout, keys[0], keys[1])
        with pytest.raises(StaleLayoutError):
            count_range(layout, keys[0], keys[1])

    def test_approx_refuses(self, stale_layout):
        from repro.cuart.approx import approx_lookup

        layout, keys = stale_layout
        with pytest.raises(StaleLayoutError):
            approx_lookup(layout, keys[0], 1)

    def test_save_refuses(self, stale_layout, tmp_path):
        from repro.cuart.serialize import save_layout

        layout, _ = stale_layout
        with pytest.raises(StaleLayoutError):
            save_layout(layout, tmp_path / "stale.npz")


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.util.keys",
        "repro.art.bulk",
        "repro.cuart.partition",
        "repro.host.engine",
    ],
)
def test_docstring_examples_hold(module_name):
    """The usage examples embedded in docstrings must stay runnable."""
    import importlib

    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "expected at least one doctest example"
