"""Unified BatchResult / OpStatus API (repro.host.results)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.constants import NIL_VALUE
from repro.host.results import (
    BatchResult,
    OpStatus,
    status_codes,
    values_to_list,
)

NIL = np.uint64(NIL_VALUE)


def _lookup_result(**kw):
    vals = np.array([7, NIL, 42], dtype=np.uint64)
    return BatchResult("lookup", found=vals != NIL, values=vals, **kw)


class TestStatusCodes:
    def test_found_partitions_ok_not_found(self):
        st = status_codes(np.array([True, False, True]))
        assert st.tolist() == [OpStatus.OK, OpStatus.NOT_FOUND, OpStatus.OK]
        assert st.dtype == np.uint8

    def test_precedence_failed_beats_everything(self):
        found = np.array([True] * 5)
        st = status_codes(
            found,
            attempts=np.array([1, 2, 2, 2, 2]),
            degraded=np.array([False, False, True, True, False]),
            failed=np.array([False, False, False, True, True]),
        )
        assert st.tolist() == [
            OpStatus.OK,
            OpStatus.RETRIED,
            OpStatus.DEGRADED_CPU,
            OpStatus.FAILED,
            OpStatus.FAILED,
        ]

    def test_retry_overrides_not_found(self):
        # a retried miss reports RETRIED: the status says how it was
        # served, found_array says whether the key existed
        st = status_codes(np.array([False]), attempts=np.array([3]))
        assert st.tolist() == [OpStatus.RETRIED]

    def test_shed_status_exists_for_admission_control(self):
        # the serving front-end stamps SHED on ops rejected at the
        # queue; it never appears in device-produced status vectors
        assert OpStatus.SHED == 5
        assert OpStatus.SHED.name == "SHED"


class TestValuesToList:
    def test_nil_maps_to_none(self):
        vals = np.array([7, NIL, 42], dtype=np.uint64)
        assert values_to_list(vals) == [7, None, 42]

    def test_overrides_apply(self):
        vals = np.array([NIL, NIL], dtype=np.uint64)
        assert values_to_list(vals, {0: 99}) == [99, None]


class TestCanonicalAccessors:
    def test_lookup_shape(self):
        res = _lookup_result()
        assert res.op == "lookup"
        assert res.found_array.tolist() == [True, False, True]
        assert res.found_mask is res.found_array
        assert res.n_found == 2
        assert res.to_list() == [7, None, 42]
        assert res.attempts.tolist() == [1, 1, 1]  # defaults to one try
        assert res.summary is None

    def test_status_counters(self):
        res = _lookup_result(
            status=np.array(
                [OpStatus.RETRIED, OpStatus.DEGRADED_CPU, OpStatus.FAILED],
                dtype=np.uint8,
            ),
            attempts=np.array([4, 4, 4]),
        )
        assert res.n_retried == 1
        assert res.n_degraded == 1
        assert res.n_failed == 1
        assert not res.ok
        assert res.counts_by_status() == {
            "RETRIED": 1, "DEGRADED_CPU": 1, "FAILED": 1,
        }

    def test_ok_and_default_status(self):
        res = _lookup_result()
        assert res.ok
        assert res.counts_by_status() == {"OK": 2, "NOT_FOUND": 1}

    def test_write_result_to_list_is_found_flags(self):
        res = BatchResult("update", found=np.array([True, False]))
        assert res.to_list() == [True, False]
        assert res.value_array is None

    def test_overrides_resolve_host_side_rows(self):
        vals = np.array([NIL, NIL], dtype=np.uint64)
        res = BatchResult(
            "lookup", found=np.array([True, False]), values=vals,
            overrides={0: 99},
        )
        assert res.to_list() == [99, None]

    def test_insert_summary_via_attribute(self):
        res = BatchResult(
            "insert", found=np.array([True]),
            summary={"device_inserted": 1, "deferred": 0},
        )
        assert res.summary["device_inserted"] == 1
        assert res.summary["deferred"] == 0


class TestSequenceProtocol:
    def test_len_iter_index_do_not_warn(self):
        res = _lookup_result()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(res) == 3
            assert list(res) == [7, None, 42]
            assert res[0] == 7
            assert res[1] is None
            assert res[-1] == 42
            assert res[0:2] == [7, None]

    def test_equality_against_plain_sequences(self):
        res = _lookup_result()
        assert res == [7, None, 42]
        assert res == (7, None, 42)
        assert res != [7, None, 41]
        assert res == _lookup_result()
        assert (res == object()) is False  # NotImplemented -> identity

    def test_repr_is_list_repr(self):
        assert repr(_lookup_result()) == "[7, None, 42]"


class TestShimsRetired:
    """The PR 4 deprecation shims completed their cycle and are gone;
    the -W error::DeprecationWarning CI gate stays honest because no
    code path can emit the shim warnings any more."""

    def test_legacy_accessors_removed(self):
        res = _lookup_result()
        with pytest.raises(AttributeError):
            res.values
        with pytest.raises(AttributeError):
            res.array
        with pytest.raises(AttributeError):
            res.hit_mask

    def test_string_getitem_removed(self):
        res = BatchResult(
            "insert", found=np.array([True]),
            summary={"device_inserted": 1},
        )
        with pytest.raises(TypeError):
            res["device_inserted"]

    def test_legacy_classes_removed(self):
        import repro.host.results as results

        assert not hasattr(results, "LazyValues")
        assert not hasattr(results, "FoundFlags")
