"""Unified BatchResult / OpStatus API (repro.host.results)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.constants import NIL_VALUE
from repro.errors import ReproDeprecationWarning
from repro.host.results import (
    BatchResult,
    FoundFlags,
    LazyValues,
    OpStatus,
    status_codes,
)

NIL = np.uint64(NIL_VALUE)


def _lookup_result(**kw):
    vals = np.array([7, NIL, 42], dtype=np.uint64)
    return BatchResult("lookup", found=vals != NIL, values=vals, **kw)


class TestStatusCodes:
    def test_found_partitions_ok_not_found(self):
        st = status_codes(np.array([True, False, True]))
        assert st.tolist() == [OpStatus.OK, OpStatus.NOT_FOUND, OpStatus.OK]
        assert st.dtype == np.uint8

    def test_precedence_failed_beats_everything(self):
        found = np.array([True] * 5)
        st = status_codes(
            found,
            attempts=np.array([1, 2, 2, 2, 2]),
            degraded=np.array([False, False, True, True, False]),
            failed=np.array([False, False, False, True, True]),
        )
        assert st.tolist() == [
            OpStatus.OK,
            OpStatus.RETRIED,
            OpStatus.DEGRADED_CPU,
            OpStatus.FAILED,
            OpStatus.FAILED,
        ]

    def test_retry_overrides_not_found(self):
        # a retried miss reports RETRIED: the status says how it was
        # served, found_array says whether the key existed
        st = status_codes(np.array([False]), attempts=np.array([3]))
        assert st.tolist() == [OpStatus.RETRIED]


class TestCanonicalAccessors:
    def test_lookup_shape(self):
        res = _lookup_result()
        assert res.op == "lookup"
        assert res.found_array.tolist() == [True, False, True]
        assert res.found_mask is res.found_array
        assert res.n_found == 2
        assert res.to_list() == [7, None, 42]
        assert res.attempts.tolist() == [1, 1, 1]  # defaults to one try
        assert res.summary is None

    def test_status_counters(self):
        res = _lookup_result(
            status=np.array(
                [OpStatus.RETRIED, OpStatus.DEGRADED_CPU, OpStatus.FAILED],
                dtype=np.uint8,
            ),
            attempts=np.array([4, 4, 4]),
        )
        assert res.n_retried == 1
        assert res.n_degraded == 1
        assert res.n_failed == 1
        assert not res.ok
        assert res.counts_by_status() == {
            "RETRIED": 1, "DEGRADED_CPU": 1, "FAILED": 1,
        }

    def test_ok_and_default_status(self):
        res = _lookup_result()
        assert res.ok
        assert res.counts_by_status() == {"OK": 2, "NOT_FOUND": 1}

    def test_write_result_to_list_is_found_flags(self):
        res = BatchResult("update", found=np.array([True, False]))
        assert res.to_list() == [True, False]
        assert res.value_array is None

    def test_overrides_resolve_host_side_rows(self):
        vals = np.array([NIL, NIL], dtype=np.uint64)
        res = BatchResult(
            "lookup", found=np.array([True, False]), values=vals,
            overrides={0: 99},
        )
        assert res.to_list() == [99, None]


class TestSequenceProtocol:
    def test_len_iter_index_do_not_warn(self):
        res = _lookup_result()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(res) == 3
            assert list(res) == [7, None, 42]
            assert res[0] == 7
            assert res[1] is None
            assert res[-1] == 42
            assert res[0:2] == [7, None]

    def test_equality_against_legacy_shapes(self):
        res = _lookup_result()
        assert res == [7, None, 42]
        assert res == (7, None, 42)
        assert res != [7, None, 41]
        assert res == LazyValues(np.array([7, NIL, 42], dtype=np.uint64))
        assert res == _lookup_result()
        assert (res == object()) is False  # NotImplemented -> identity

    def test_repr_is_list_repr(self):
        assert repr(_lookup_result()) == "[7, None, 42]"


class TestDeprecatedAccessors:
    def test_values_warns_and_returns_lazyvalues(self):
        res = _lookup_result()
        with pytest.warns(ReproDeprecationWarning, match="BatchResult.values"):
            vals = res.values
        assert isinstance(vals, LazyValues)
        assert vals == [7, None, 42]

    def test_array_warns(self):
        res = _lookup_result()
        with pytest.warns(ReproDeprecationWarning, match="BatchResult.array"):
            assert res.array.dtype == np.uint64
        wres = BatchResult("delete", found=np.array([True]))
        with pytest.warns(ReproDeprecationWarning):
            assert wres.array.dtype == bool

    def test_hit_mask_warns(self):
        res = _lookup_result()
        with pytest.warns(ReproDeprecationWarning, match="hit_mask"):
            assert res.hit_mask.tolist() == [True, False, True]

    def test_string_getitem_reads_summary(self):
        res = BatchResult(
            "insert", found=np.array([True]),
            summary={"device_inserted": 1, "deferred": 0},
        )
        with pytest.warns(ReproDeprecationWarning, match="summary"):
            assert res["device_inserted"] == 1

    def test_string_getitem_without_summary_raises_keyerror(self):
        res = _lookup_result()
        with pytest.warns(ReproDeprecationWarning):
            with pytest.raises(KeyError):
                res["device_inserted"]

    def test_deprecation_warning_is_a_deprecation_warning(self):
        # pytest's -W error::DeprecationWarning must be allow-listable
        # by our own subclass
        assert issubclass(ReproDeprecationWarning, DeprecationWarning)


class TestLegacyShapes:
    def test_lazy_values_round_trip(self):
        lv = LazyValues(np.array([1, NIL], dtype=np.uint64))
        assert lv.to_list() == [1, None]
        assert lv.hit_mask.tolist() == [True, False]
        assert lv == [1, None]
        assert repr(lv) == "[1, None]"

    def test_found_flags_is_a_list(self):
        ff = FoundFlags(np.array([True, False]))
        assert ff == [True, False]
        assert ff.array.tolist() == [True, False]
