"""Lockstep oracle tests for the log-structured write-absorption layer.

The memtable acks writes host-side in O(1), folds them per key with
last-writer-wins semantics, and merge-compacts sealed segments into the
device layout in the background — while readers pin snapshot epochs so
a compaction install never changes an in-flight batch's answers.  These
tests pin the whole stack — absorb, seal, fold, classify, scatter,
snapshot shield — against the one-op-at-a-time scalar oracle:

* update/delete traffic must leave **byte-identical serialized device
  layouts** (updates scatter in place, deletes clear leaves without
  restructuring, and class batches dispatch in absorb order so
  free-list push order matches the serial history);
* insert / delete-then-reinsert traffic may legitimately reuse leaf
  slots in a different order, so it is compared through a canonical
  re-serialization of the surviving content;
* a reader pinned at epoch N must never observe epoch N+1 writes, even
  when a debt-triggered compaction races mid-batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuart.serialize import save_layout
from repro.host.cache import HotKeyCache
from repro.host.config import EngineConfig
from repro.host.engine import CuartEngine
from repro.host.memtable import Memtable, MemtableConfig
from repro.host.mixed import MixedWorkloadExecutor
from repro.host.sharding import (
    ShardedEngine,
    ShardedMixedExecutor,
    ShardingConfig,
)
from repro.workloads.queries import QueryMix, mixed_queries
from repro.workloads.synthetic import random_keys
from tests.cuart.test_write_path_lockstep import _assert_layouts_equal

SEEDS = [3, 17, 91]

#: tiny segments + minimal debt budget: compactions race mid-stream
#: instead of only firing at the end-of-run drain.
RACY = MemtableConfig(segment_ops=8, max_debt=1)


def _engine(keys, *, batch_size=16, cache_size=0) -> CuartEngine:
    eng = CuartEngine(EngineConfig(
        batch_size=batch_size, cache_size=cache_size,
    ))
    eng.populate([(k, i + 1) for i, k in enumerate(keys)])
    eng.map_to_device()
    return eng


def _scalar_oracle(eng: CuartEngine, stream) -> list:
    out = []
    for kind, payload in stream:
        if kind == "lookup":
            out.append(eng.lookup([payload])[0])
        elif kind == "update":
            eng.update([payload])
        elif kind == "delete":
            eng.delete([payload])
        elif kind == "insert":
            eng.insert([payload])
        else:  # pragma: no cover - streams below never emit scans
            raise AssertionError(kind)
    return out


def _canonical_engine(eng) -> CuartEngine:
    canon = CuartEngine(batch_size=64)
    items = eng.items() if hasattr(eng, "items") else eng.tree.items()
    canon.populate(sorted(items))
    canon.map_to_device()
    return canon


def _assert_lockstep(keys, stream, *, config=RACY, tmp_path=None):
    """Memtable-path run vs scalar oracle: identical per-op results and
    byte-identical serialized layouts (only valid for streams without
    inserts — slot reuse is order-free for update/delete traffic)."""
    absorbed = _engine(keys)
    scalar = _engine(keys)
    ex = MixedWorkloadExecutor(absorbed, memtable=config)
    results, report = ex.run(stream)
    oracle = _scalar_oracle(scalar, stream)

    assert results == oracle, "per-op lookup results diverged from serial"
    _assert_layouts_equal(absorbed.layout, scalar.layout)
    if tmp_path is not None:
        a, b = tmp_path / "absorbed.npz", tmp_path / "scalar.npz"
        save_layout(absorbed.layout, a)
        save_layout(scalar.layout, b)
        assert a.read_bytes() == b.read_bytes(), (
            "serialized layouts are not byte-identical"
        )
    return ex, report


class TestMemtableLockstep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_mixed_stream(self, seed, tmp_path):
        keys = random_keys(256, 12, seed=seed)
        mix = QueryMix(lookups=0.5, updates=0.35, deletes=0.15)
        stream = mixed_queries(keys, 600, mix, seed=seed + 1)
        ex, report = _assert_lockstep(keys, stream, tmp_path=tmp_path)
        assert report.operations == 600
        # every write acked host-side; debt fully drained at end of run
        assert sum(report.absorbed.values()) == (
            report.updates + report.deletes + report.inserts
        )
        assert ex.memtable.debt == 0
        assert ex.memtable.pending_ops() == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_adversarial_hot_key_raw_waw(self, seed, tmp_path):
        """RAW / WAW chains concentrated on a tiny hot set: reads must
        come from the delta (read-your-writes) while the folded device
        rows trail behind in compaction batches."""
        rng = np.random.default_rng(seed)
        keys = random_keys(64, 12, seed=seed)
        hot = keys[:6]
        stream = []
        for i in range(500):
            k = hot[int(rng.integers(len(hot)))]
            r = int(rng.integers(5))
            if r == 0:
                stream.append(("update", (k, 10_000 + i)))  # WAW chains
            elif r == 1:
                stream.append(("update", (k, 20_000 + i)))
                stream.append(("lookup", k))  # immediate RAW
            elif r == 2:
                stream.append(("delete", k))
                stream.append(("lookup", k))  # read-after-delete
            else:
                stream.append(("lookup", k))
        ex, report = _assert_lockstep(keys, stream, tmp_path=tmp_path)
        # hot-key LWW folding must actually shrink the device batches
        assert ex.memtable.folded_away > 0
        assert ex.memtable.absorbed_write_ratio() > 0.0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_compaction_races_mid_stream(self, seed, tmp_path):
        """Debt-triggered compactions must fire *during* the stream (not
        just at the final drain) and still stay lockstep with serial."""
        mix = QueryMix(lookups=0.3, updates=0.5, deletes=0.2)
        keys = random_keys(128, 12, seed=seed)
        stream = mixed_queries(keys, 800, mix, seed=seed + 5)
        ex, report = _assert_lockstep(keys, stream, tmp_path=tmp_path)
        # > 1: at least one mid-stream install plus the end-of-run drain
        assert report.compactions > 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_delete_reinsert_serves_serial_content(self, seed, tmp_path):
        """Delete → insert → read chains: slot reuse order may differ,
        so compare per-op results plus canonical re-serialization."""
        rng = np.random.default_rng(seed + 7)
        keys = random_keys(64, 12, seed=seed)
        hot = keys[:8]
        stream = []
        for i in range(300):
            k = hot[int(rng.integers(len(hot)))]
            r = int(rng.integers(4))
            if r == 0:
                stream.append(("delete", k))
            elif r == 1:
                stream.append(("insert", (k, 30_000 + i)))
                stream.append(("lookup", k))
            elif r == 2:
                stream.append(("update", (k, 40_000 + i)))
            else:
                stream.append(("lookup", k))
        absorbed = _engine(keys)
        scalar = _engine(keys)
        results, _ = MixedWorkloadExecutor(
            absorbed, memtable=RACY
        ).run(stream)
        oracle = _scalar_oracle(scalar, stream)
        assert results == oracle
        ca, cb = _canonical_engine(absorbed), _canonical_engine(scalar)
        _assert_layouts_equal(ca.layout, cb.layout)
        pa, pb = tmp_path / "a.npz", tmp_path / "b.npz"
        save_layout(ca.layout, pa)
        save_layout(cb.layout, pb)
        assert pa.read_bytes() == pb.read_bytes()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_duplicate_key_bursts(self, seed, tmp_path):
        """Bursts of identical ops on one key: duplicate deletes report
        exactly one hit, duplicate updates are last-writer-wins, and the
        memtable folds each burst to at most one device row."""
        rng = np.random.default_rng(seed + 40)
        keys = random_keys(48, 12, seed=seed)
        stream = []
        for i in range(120):
            k = keys[int(rng.integers(len(keys)))]
            burst = int(rng.integers(2, 5))
            r = int(rng.integers(3))
            if r == 0:
                stream.extend([("delete", k)] * burst)
            elif r == 1:
                stream.extend(
                    ("update", (k, 1_000 * i + j)) for j in range(burst)
                )
            else:
                stream.extend([("lookup", k)] * burst)
            stream.append(("lookup", keys[int(rng.integers(len(keys)))]))
        _assert_lockstep(keys, stream, tmp_path=tmp_path)

    def test_report_tallies_match_oracle(self):
        """Absorb-time hit/miss resolution agrees with a serial replay,
        and absorbed + forwarded + statuses account for every op."""
        keys = random_keys(128, 12, seed=9)
        mix = QueryMix(lookups=0.6, updates=0.25, deletes=0.15)
        stream = mixed_queries(keys, 400, mix, seed=10)
        eng = _engine(keys)
        _, report = MixedWorkloadExecutor(eng, memtable=RACY).run(stream)

        state = {k: i + 1 for i, k in enumerate(keys)}
        hits = misses = upd_miss = del_miss = 0
        for kind, payload in stream:
            if kind == "lookup":
                if payload in state:
                    hits += 1
                else:
                    misses += 1
            elif kind == "update":
                if payload[0] in state:
                    state[payload[0]] = payload[1]
                else:
                    upd_miss += 1
            elif kind == "delete":
                if payload in state:
                    del state[payload]
                else:
                    del_miss += 1
        assert (report.hits, report.misses) == (hits, misses)
        assert report.update_misses == upd_miss
        assert report.delete_misses == del_miss
        assert sum(report.ops_by_status.values()) == report.operations


class TestSnapshotIsolation:
    def _memtable(self, keys):
        eng = _engine(keys)
        return eng, Memtable(eng, MemtableConfig(segment_ops=4, max_debt=0))

    def test_pinned_reader_never_observes_next_epoch(self):
        """A reader pinned at epoch N answers from pre-install state even
        after a compaction installs epoch N+1 writes under it."""
        keys = random_keys(32, 12, seed=5)
        eng, mt = self._memtable(keys)
        snap = mt.pin()
        base_epoch = snap.epoch

        victims = keys[:8]
        for i, k in enumerate(victims):
            mt.absorb_update(k, 90_000 + i)
        mt.absorb_delete(keys[8])
        assert mt.compact(force=True) is not None
        assert mt.epoch == base_epoch + 1

        # the pinned reader still sees the epoch-N values …
        for i, k in enumerate(victims):
            assert snap.read(k) == (True, i + 1)
        assert snap.read(keys[8]) == (True, 9)
        # … while the device and a fresh reader see epoch N+1
        assert eng.lookup([victims[0]])[0] == 90_000
        fresh = mt.pin()
        assert fresh.epoch == base_epoch + 1
        assert fresh.read(victims[0]) == (True, 90_000)
        assert fresh.read(keys[8]) == (False, None)
        snap.release()
        fresh.release()

    def test_pinned_reader_sees_its_own_epoch_delta(self):
        """Writes absorbed *before* the pin are part of the reader's
        view (read-your-writes), installs after it are not."""
        keys = random_keys(16, 12, seed=6)
        eng, mt = self._memtable(keys)
        mt.absorb_update(keys[0], 555)
        snap = mt.pin()
        assert snap.read(keys[0]) == (True, 555)
        # a post-pin write to another key is invisible to this reader
        mt.absorb_update(keys[1], 777)
        mt.compact(force=True)
        assert snap.read(keys[1]) == (True, 2)
        snap.release()

    def test_released_snapshot_costs_the_compactor_nothing(self):
        keys = random_keys(16, 12, seed=8)
        _, mt = self._memtable(keys)
        snap = mt.pin()
        snap.release()
        mt.absorb_update(keys[0], 123)
        mt.compact(force=True)
        assert snap.shield == {}  # nothing was shielded for it


class TestCacheCoherence:
    def test_no_stale_read_after_absorbed_update(self):
        """Regression: an absorbed update must refresh the hot-key LRU
        entry immediately — the device-applied patch only runs at
        compaction time, long after a cached reader could go stale."""
        keys = random_keys(32, 12, seed=12)
        eng = _engine(keys, cache_size=16)
        k = keys[0]
        assert eng.lookup([k]) == [1]
        assert eng.lookup([k]) == [1]  # k is now LRU-resident

        mt = Memtable(eng, MemtableConfig(segment_ops=64, max_debt=4))
        assert mt.absorb_update(k, 4242) is True
        # nothing compacted yet: the device still holds the old value,
        # but the cached read path must already serve the new one
        assert mt.debt == 0 and mt.epoch == 0
        assert eng.lookup([k]) == [4242]

    def test_no_stale_read_after_absorbed_delete(self):
        keys = random_keys(32, 12, seed=13)
        eng = _engine(keys, cache_size=16)
        k = keys[0]
        assert eng.lookup([k]) == [1]
        mt = Memtable(eng, MemtableConfig(segment_ops=64, max_debt=4))
        assert mt.absorb_delete(k) is True
        assert eng.lookup([k]) == [None]

    def test_cold_keys_never_pollute_the_lru(self):
        """update_if_cached semantics carry over: absorbing a write to a
        key that is not resident must not insert it."""
        keys = random_keys(32, 12, seed=14)
        eng = _engine(keys, cache_size=16)
        mt = Memtable(eng, MemtableConfig())
        cold = keys[5]
        mt.absorb_update(cold, 99)
        assert cold not in eng.cache._data


class TestShardedMemtable:
    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_sharded_memtable_matches_single_oracle(self, seed, tmp_path):
        """Per-shard memtables: same per-op results and canonical bytes
        as a single-engine serial oracle."""
        keys = random_keys(192, 12, seed=seed)
        items = [(k, i + 1) for i, k in enumerate(keys)]
        sharded = ShardedEngine(
            sharding=ShardingConfig(n_shards=4), batch_size=16
        )
        sharded.populate(items)
        sharded.map_to_device()
        single = _engine(keys)
        rng = np.random.default_rng(seed + 3)
        stream = []
        for i in range(500):
            k = keys[int(rng.integers(len(keys)))]
            r = float(rng.random())
            if r < 0.4:
                stream.append(("lookup", k))
            elif r < 0.75:
                stream.append(("update", (k, 50_000 + i)))
            elif r < 0.9:
                stream.append(("delete", k))
            else:
                stream.append(("insert", (k, 60_000 + i)))
        got, rep = ShardedMixedExecutor(sharded, memtable=RACY).run(stream)
        want = _scalar_oracle(single, stream)
        assert got == want
        ca, cb = _canonical_engine(sharded), _canonical_engine(single)
        _assert_layouts_equal(ca.layout, cb.layout)
        pa, pb = tmp_path / "sharded.npz", tmp_path / "single.npz"
        save_layout(ca.layout, pa)
        save_layout(cb.layout, pb)
        assert pa.read_bytes() == pb.read_bytes()
        assert sum(rep.absorbed.values()) > 0
