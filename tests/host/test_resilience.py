"""Retry / degrade policy engine (repro.host.resilience)."""

from __future__ import annotations

import pytest

from repro.errors import (
    HashTableFullError,
    SimulationError,
    TransientKernelError,
)
from repro.host.resilience import (
    MAX_RECOVERIES_PER_DISPATCH,
    DeviceHealth,
    ResiliencePolicy,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.util.rng import make_rng


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_s": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SimulationError) as ei:
            RetryPolicy(**kwargs)
        assert "value" in ei.value.context

    def test_delay_grows_exponentially(self):
        pol = RetryPolicy(backoff_base_s=1e-3, backoff_factor=2.0, jitter=0.0)
        rng = make_rng(0)
        assert pol.delay_s(1, rng) == pytest.approx(1e-3)
        assert pol.delay_s(2, rng) == pytest.approx(2e-3)
        assert pol.delay_s(3, rng) == pytest.approx(4e-3)

    def test_jitter_bounds(self):
        pol = RetryPolicy(backoff_base_s=1e-3, backoff_factor=1.0, jitter=0.1)
        rng = make_rng(5)
        delays = [pol.delay_s(1, rng) for _ in range(200)]
        assert all(0.9e-3 <= d <= 1.1e-3 for d in delays)
        assert len(set(delays)) > 1  # jitter actually varies


class TestResiliencePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"unhealthy_after": 0},
            {"probe_interval": 0},
            {"max_hash_slots": 100},  # not a power of two
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SimulationError):
            ResiliencePolicy(**kwargs)


class TestDeviceHealth:
    def test_circuit_transitions(self):
        h = DeviceHealth(unhealthy_after=2)
        assert h.healthy
        h.mark_failure()
        assert h.healthy  # one failure is below the threshold
        h.mark_failure()
        assert not h.healthy
        h.degraded_calls = 5
        h.recover()
        assert h.healthy
        assert h.degraded_calls == 0
        assert h.recoveries == 1

    def test_success_resets_streak(self):
        h = DeviceHealth(unhealthy_after=2)
        h.mark_failure()
        h.mark_success()
        h.mark_failure()
        assert h.healthy


def _boom(n, exc_factory=None):
    """A callable that fails ``n`` times then returns 'ok'."""
    state = {"calls": 0}
    factory = exc_factory or (
        lambda: TransientKernelError("injected", fault="kernel_abort")
    )

    def fn():
        state["calls"] += 1
        if state["calls"] <= n:
            raise factory()
        return "ok"

    fn.state = state
    return fn


class TestDispatcherRun:
    def _disp(self, **policy_kw):
        return ResilientDispatcher(ResiliencePolicy(**policy_kw))

    def test_transient_retry_then_success(self):
        disp = self._disp()
        out, attempts = disp.run("lookup", _boom(2))
        assert out == "ok"
        assert attempts == 3
        assert disp.health.healthy
        assert disp.health.consecutive_failures == 0
        assert disp.metrics.value(
            "resilience_retries_total", op="lookup") == 2
        assert disp.simulated_backoff_s > 0.0

    def test_exhausted_degrades_to_none(self):
        disp = self._disp(retry=RetryPolicy(max_attempts=2))
        out, attempts = disp.run("lookup", _boom(99))
        assert out is None
        assert attempts == 2
        assert disp.health.consecutive_failures == 1
        assert disp.metrics.value(
            "resilience_retry_exhausted_total", op="lookup") == 1

    def test_exhausted_raises_when_degrade_forbidden(self):
        disp = self._disp(retry=RetryPolicy(max_attempts=2),
                          allow_degrade=False)
        with pytest.raises(TransientKernelError):
            disp.run("lookup", _boom(99))
        # per-call override beats the policy
        disp2 = self._disp(retry=RetryPolicy(max_attempts=2))
        with pytest.raises(TransientKernelError):
            disp2.run("map", _boom(99), degrade=False)

    def test_recover_callback_for_non_transient(self):
        recovered = []

        def factory():
            return HashTableFullError("full", buffer="hash-table",
                                      slots=8, occupied=8, requested=4)

        def recover(exc):
            recovered.append(exc)
            return True

        disp = self._disp()
        out, attempts = disp.run("update", _boom(1, factory),
                                 recover=recover)
        assert out == "ok"
        assert len(recovered) == 1
        assert recovered[0].context["buffer"] == "hash-table"

    def test_non_transient_without_recover_raises(self):
        disp = self._disp()
        with pytest.raises(HashTableFullError):
            disp.run("update", _boom(
                1, lambda: HashTableFullError("full", buffer="hash-table")))

    def test_recover_declining_reraises(self):
        disp = self._disp()
        with pytest.raises(HashTableFullError):
            disp.run(
                "update",
                _boom(1, lambda: HashTableFullError("full",
                                                    buffer="hash-table")),
                recover=lambda exc: False,
            )

    def test_recoveries_are_bounded_per_dispatch(self):
        calls = []
        disp = self._disp()
        with pytest.raises(HashTableFullError):
            disp.run(
                "update",
                _boom(10_000, lambda: HashTableFullError(
                    "full", buffer="hash-table")),
                recover=lambda exc: calls.append(exc) or True,
            )
        assert len(calls) == MAX_RECOVERIES_PER_DISPATCH

    def test_backoff_accumulates_not_sleeps(self):
        disp = self._disp(retry=RetryPolicy(
            max_attempts=4, backoff_base_s=10.0, jitter=0.0))
        # 10s+20s+40s of nominal backoff must be charged, not slept
        out, attempts = disp.run("lookup", _boom(3))
        assert out == "ok"
        assert disp.simulated_backoff_s == pytest.approx(70.0)
        assert disp.metrics.value(
            "resilience_backoff_seconds_total") == pytest.approx(70.0)

    def test_jitter_stream_is_seeded(self):
        a = self._disp(seed=13)
        b = self._disp(seed=13)
        a.run("lookup", _boom(2))
        b.run("lookup", _boom(2))
        assert a.simulated_backoff_s == b.simulated_backoff_s


class TestProbeCadence:
    def test_first_degraded_call_probes_immediately(self):
        disp = ResilientDispatcher(ResiliencePolicy(probe_interval=3))
        # cadence is checked before note_degraded: call 0, 3, 6 ... probe
        schedule = []
        for i in range(7):
            schedule.append(disp.due_probe())
            disp.note_degraded("lookup")
        assert schedule == [True, False, False, True, False, False, True]
        assert disp.health.degraded_calls == 7
        assert disp.metrics.value(
            "resilience_degraded_batches_total", op="lookup") == 7

    def test_record_probe_counts(self):
        disp = ResilientDispatcher(ResiliencePolicy())
        disp.record_probe()
        disp.record_probe()
        assert disp.metrics.value("resilience_probes_total") == 2
