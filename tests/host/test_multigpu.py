"""Unit tests for the multi-GPU scale-out model."""

import pytest

from repro.bench.runner import cuart_lookup_log
from repro.errors import SimulationError
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import A100, SERVER_CPU
from repro.host.dispatcher import DispatchConfig
from repro.host.multigpu import (
    MultiGpuConfig,
    multi_gpu_throughput,
    scaling_curve,
)


@pytest.fixture(scope="module")
def kernel():
    log = cuart_lookup_log("random", 65536, 32, 32768)
    return CostModel(A100, l2_scale=1 / 256).kernel_time(log)


CFG = DispatchConfig(batch_size=32768, host_threads=8, key_bytes=32)


class TestScaling:
    def test_one_device_matches_single_pipeline(self, kernel):
        from repro.host.dispatcher import pipeline_throughput

        single = pipeline_throughput(kernel, CFG, A100, SERVER_CPU)
        multi = multi_gpu_throughput(
            kernel, CFG, A100, SERVER_CPU, MultiGpuConfig(n_devices=1)
        )
        assert multi.throughput_mops == pytest.approx(
            single.throughput_mops, rel=0.01
        )

    def test_two_devices_never_slower_never_superlinear(self, kernel):
        one = multi_gpu_throughput(
            kernel, CFG, A100, SERVER_CPU, MultiGpuConfig(1)
        ).throughput_mops
        two = multi_gpu_throughput(
            kernel, CFG, A100, SERVER_CPU, MultiGpuConfig(2)
        ).throughput_mops
        assert one <= two <= 2.01 * one

    def test_host_bound_flattens_the_curve(self, kernel):
        curve = scaling_curve(kernel, CFG, A100, SERVER_CPU, max_devices=8)
        rates = [r for _, r in curve]
        assert rates == sorted(rates)  # monotone
        # marginal gain shrinks: the 8th device buys less than the 2nd
        gain_2 = rates[1] - rates[0]
        gain_8 = rates[7] - rates[6]
        assert gain_8 <= gain_2
        # and the curve is bounded by the shared host stage
        assert rates[-1] < 8 * rates[0]

    def test_updates_do_not_scale(self, kernel):
        lookup2 = multi_gpu_throughput(
            kernel, CFG, A100, SERVER_CPU, MultiGpuConfig(2, "lookup")
        ).throughput_mops
        update1 = multi_gpu_throughput(
            kernel, CFG, A100, SERVER_CPU, MultiGpuConfig(1, "update")
        ).throughput_mops
        update2 = multi_gpu_throughput(
            kernel, CFG, A100, SERVER_CPU, MultiGpuConfig(2, "update")
        ).throughput_mops
        assert update2 == pytest.approx(update1, rel=0.01)  # broadcast writes
        assert lookup2 >= update2

    def test_validation(self, kernel):
        with pytest.raises(SimulationError):
            MultiGpuConfig(n_devices=0)
        with pytest.raises(SimulationError):
            MultiGpuConfig(2, "scan")
