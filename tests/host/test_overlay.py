"""The pending-write overlay must answer reads exactly like a serial
client replaying the same op sequence against a plain dict.

:class:`~repro.host.overlay.WriteOverlay` was promoted out of the mixed
executor's hot loop; these tests pin its contract in isolation — random
op streams run in lockstep against a reference model — plus the
executor-facing edges: forwarded-miss short-circuits, the memoized
base-existence probe, snapshot stability, and the disabled degradation
when no ``contains`` probe exists.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.overlay import WriteOverlay


class _Reference:
    """Serial-client oracle: a dict mutated op by op, with the same
    "updates never resurrect" semantics the device batches apply."""

    def __init__(self, base: dict) -> None:
        self.state = dict(base)

    def lookup(self, key):
        return (key in self.state, self.state.get(key))

    def update(self, key, value) -> bool:
        if key not in self.state:
            return False
        self.state[key] = value
        return True

    def delete(self, key) -> bool:
        return self.state.pop(key, None) is not None

    def insert(self, key, value) -> None:
        self.state[key] = value


KEYS = [bytes([i]) * 4 for i in range(8)]


@st.composite
def op_streams(draw):
    n = draw(st.integers(1, 60))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["lookup", "update", "delete", "insert"]))
        key = draw(st.sampled_from(KEYS))
        value = draw(st.integers(0, 1000))
        ops.append((kind, key, value))
    return ops


class TestLockstepWithSerialClient:
    @given(op_streams())
    @settings(max_examples=200, deadline=None)
    def test_reads_match_reference(self, ops):
        base = {KEYS[i]: i for i in range(4)}  # half present, half absent
        overlay = WriteOverlay(lambda k: k in base)
        ref = _Reference(base)
        for kind, key, value in ops:
            if kind == "lookup":
                expected = ref.lookup(key)
                got = overlay.read(key)
                if got is None:
                    got = (key in base, base.get(key))
                assert got == (expected if expected[0] else (False, None))
            elif kind == "update":
                queued = overlay.note_update(key, value)
                applied = ref.update(key, value)
                # False means guaranteed miss: the reference must agree
                if not queued:
                    assert not applied
            elif kind == "delete":
                queued = overlay.note_delete(key)
                existed = ref.delete(key)
                if not queued:
                    assert not existed
            else:
                overlay.note_insert(key, value)
                ref.insert(key, value)

    @given(op_streams())
    @settings(max_examples=100, deadline=None)
    def test_snapshot_reflects_pending_effects(self, ops):
        base = {KEYS[i]: i for i in range(4)}
        overlay = WriteOverlay(lambda k: k in base)
        ref = _Reference(base)
        for kind, key, value in ops:
            if kind == "update":
                if overlay.note_update(key, value):
                    ref.update(key, value)
            elif kind == "delete":
                if overlay.note_delete(key):
                    ref.delete(key)
            elif kind == "insert":
                overlay.note_insert(key, value)
                ref.insert(key, value)
        snap = overlay.snapshot()
        for key, (status, value) in snap.items():
            if status == "present":
                assert ref.state[key] == value
            elif status == "absent":
                assert key not in ref.state
            else:  # maybe: present iff base had it
                assert (key in ref.state) == (key in base)


class TestForwardedMisses:
    def test_update_after_delete_short_circuits(self):
        overlay = WriteOverlay(lambda k: True)
        assert overlay.note_delete(b"k")
        assert not overlay.note_update(b"k", 1)

    def test_double_delete_short_circuits(self):
        overlay = WriteOverlay(lambda k: True)
        assert overlay.note_delete(b"k")
        assert not overlay.note_delete(b"k")

    def test_insert_resurrects(self):
        overlay = WriteOverlay(lambda k: True)
        overlay.note_delete(b"k")
        overlay.note_insert(b"k", 9)
        assert overlay.read(b"k") == (True, 9)
        assert overlay.note_update(b"k", 10)
        assert overlay.read(b"k") == (True, 10)

    def test_maybe_resolves_through_base(self):
        base = {b"hit": 1}
        overlay = WriteOverlay(lambda k: k in base)
        overlay.note_update(b"hit", 5)
        overlay.note_update(b"miss", 6)
        assert overlay.read(b"hit") == (True, 5)
        assert overlay.read(b"miss") == (False, None)


class TestMemoizedExistence:
    def test_one_probe_per_key(self):
        calls = []

        def contains(k):
            calls.append(k)
            return True

        overlay = WriteOverlay(contains)
        overlay.note_update(b"k", 1)
        for _ in range(5):
            assert overlay.read(b"k") == (True, 1)
        assert calls == [b"k"]

    def test_clear_resets_memo_and_entries(self):
        overlay = WriteOverlay(lambda k: True)
        overlay.note_update(b"k", 1)
        assert len(overlay) == 1
        overlay.clear()
        assert len(overlay) == 0
        assert overlay.read(b"k") is None


class TestDisabledDegradation:
    def test_no_contains_means_inert(self):
        overlay = WriteOverlay(None)
        assert not overlay.enabled
        assert overlay.note_update(b"k", 1)  # always proceed to device
        assert overlay.note_delete(b"k")
        overlay.note_insert(b"k", 2)
        assert len(overlay) == 0  # nothing recorded
        assert overlay.read(b"k") is None

    def test_delete_still_short_circuits_when_enabled(self):
        overlay = WriteOverlay(lambda k: False)
        assert overlay.note_delete(b"k")  # first delete goes to device
        assert not overlay.note_delete(b"k")  # second is a known miss


class TestExecutorLockstep:
    """The extracted overlay must leave executor semantics bit-identical:
    a mixed stream through the executor equals per-op serial engine calls."""

    def test_mixed_stream_matches_serial_engine(self):
        from repro.host.engine import CuartEngine
        from repro.host.mixed import MixedWorkloadExecutor
        from repro.workloads import random_keys
        from repro.workloads.queries import QueryMix, mixed_queries

        keys = random_keys(128, 8, seed=11)
        stream = mixed_queries(keys, 300, QueryMix(), seed=12)

        batched = CuartEngine(batch_size=32)
        batched.populate((k, i) for i, k in enumerate(keys))
        batched.map_to_device()
        serial = CuartEngine(batch_size=32)
        serial.populate((k, i) for i, k in enumerate(keys))
        serial.map_to_device()

        results, report = MixedWorkloadExecutor(batched).run(stream)
        expected = []
        for kind, payload in stream:
            if kind == "lookup":
                expected.append(serial.lookup([payload])[0])
            elif kind == "update":
                serial.update([payload])
            elif kind == "delete":
                serial.delete([payload])
            elif kind == "insert":
                serial.insert([payload])
        assert results == expected
        assert report.forwarded  # the stream exercised forwarding
