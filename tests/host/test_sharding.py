"""Unit tests for the key-space-sharded serving layer.

Router determinism and balance, config validation, per-shard metric
labeling through :class:`~repro.obs.metrics.ScopedRegistry`, heat-driven
rebalancing, the parallel stream-overlap merge, and the reconciliation
of :mod:`repro.host.multigpu`'s analytic ``"sharded"`` curve against
the executed :class:`~repro.host.sharding.ShardedEngine`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.streams import StreamOverlapStats
from repro.host.config import EngineConfig
from repro.host.engine import CuartEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.host.sharding import (
    ShardedEngine,
    ShardedMixedExecutor,
    ShardingConfig,
    ShardRouter,
)
from repro.obs.metrics import MetricsRegistry
from repro.workloads.distributions import uniform_indices, zipf_indices
from repro.workloads.queries import QueryMix, mixed_queries
from repro.workloads.synthetic import random_keys

N_KEYS = 4_000


@pytest.fixture(scope="module")
def keys():
    return random_keys(N_KEYS, 12, seed=7)


def _sharded(keys, n_shards, *, mode="hash", partition_bytes=1,
             batch_size=256, **kwargs) -> ShardedEngine:
    eng = ShardedEngine(
        sharding=ShardingConfig(
            n_shards=n_shards, mode=mode, partition_bytes=partition_bytes,
        ),
        batch_size=batch_size, **kwargs,
    )
    eng.populate([(k, i + 1) for i, k in enumerate(keys)])
    eng.map_to_device()
    return eng


class TestRouter:
    def test_config_validation(self):
        with pytest.raises(SimulationError):
            ShardingConfig(n_shards=0)
        with pytest.raises(SimulationError):
            ShardingConfig(mode="modulo")
        with pytest.raises(SimulationError):
            ShardingConfig(partition_bytes=3)

    @pytest.mark.parametrize("mode", ["hash", "range"])
    @pytest.mark.parametrize("partition_bytes", [1, 2])
    def test_assignment_is_exactly_balanced(self, mode, partition_bytes):
        cfg = ShardingConfig(
            n_shards=4, mode=mode, partition_bytes=partition_bytes
        )
        router = ShardRouter(cfg)
        counts = np.bincount(router.assignment, minlength=4)
        assert counts.sum() == cfg.n_partitions
        assert counts.max() - counts.min() <= 1

    def test_range_mode_is_contiguous(self):
        router = ShardRouter(ShardingConfig(n_shards=4, mode="range"))
        # a contiguous assignment never decreases along the key axis
        assert (np.diff(router.assignment) >= 0).all()

    def test_routing_deterministic_and_heat_recorded(self, keys):
        router = ShardRouter(ShardingConfig(n_shards=4))
        a = router.route(keys[:100])
        b = router.route(keys[:100])
        assert np.array_equal(a, b)
        assert router.heat.sum() == 200
        assert all(
            router.shard_of(k) == int(s) for k, s in zip(keys[:100], a)
        )

    def test_balanced_assignment_moves_hot_partitions(self):
        router = ShardRouter(ShardingConfig(n_shards=2, mode="range"))
        # pile heat onto the low half of the key space (all on shard 0)
        router.heat[:64] = 100
        before = router.imbalance()
        new_assignment, moves = router.balanced_assignment()
        assert before == pytest.approx(2.0)
        assert moves, "skewed heat must produce a move plan"
        per_shard = np.bincount(new_assignment, weights=router.heat,
                                minlength=2)
        assert per_shard.max() / per_shard.mean() < before
        # the router's own table is untouched until the engine applies it
        assert router.imbalance() == pytest.approx(before)

    def test_balanced_assignment_noop_when_uniform(self):
        router = ShardRouter(ShardingConfig(n_shards=4))
        router.heat[:] = 5
        _, moves = router.balanced_assignment()
        assert moves == []


class TestShardedEngineOps:
    @pytest.fixture(scope="class")
    def pair(self, keys):
        sharded = _sharded(keys, 4)
        single = CuartEngine(batch_size=256)
        single.populate([(k, i + 1) for i, k in enumerate(keys)])
        single.map_to_device()
        return sharded, single

    def test_lookup_matches_single_engine(self, pair, keys):
        sharded, single = pair
        probe = keys[:300] + [b"missing-key\x00"]
        assert sharded.lookup(probe) == single.lookup(probe)

    def test_update_routes_and_applies(self, pair, keys):
        sharded, single = pair
        items = [(keys[i], 9_000 + i) for i in range(0, 600, 3)]
        res_s = sharded.update(items)
        res_o = single.update(items)
        assert res_s == res_o
        assert res_s.found_array.all()
        probe = [k for k, _ in items]
        assert sharded.lookup(probe) == single.lookup(probe)

    def test_range_merges_across_shards(self, pair, keys):
        sharded, single = pair
        lo, hi = keys[100], keys[900]
        assert sharded.range(lo, hi) == single.range(lo, hi)

    def test_contains_and_len(self, pair, keys):
        sharded, single = pair
        assert len(sharded) == len(single)
        assert sharded.contains(keys[5])
        assert not sharded.contains(b"definitely-missing\x00")

    def test_submit_drain_merges_parallel_windows(self, keys):
        eng = _sharded(keys, 4)
        upd = [(keys[i], 77) for i in uniform_indices(
            len(keys), 2_000, seed=3
        )]
        eng.submit("update", upd)
        stats = eng.drain()
        assert stats.batches > 0
        # four concurrent devices: combined makespan is the slowest
        # shard's, so well under the summed serial cost
        assert stats.makespan_s < stats.serial_s / 2
        assert stats.streams == 4 * eng.config.streams

    def test_single_shard_drain_matches_plain_engine(self, keys):
        sharded = _sharded(keys, 1)
        single = CuartEngine(batch_size=256)
        single.populate([(k, i + 1) for i, k in enumerate(keys)])
        single.map_to_device()
        upd = [(keys[i], 5) for i in range(1_000)]
        sharded.submit("update", upd)
        single.submit("update", upd)
        a, b = sharded.drain(), single.drain()
        assert a.batches == b.batches
        assert a.makespan_s == pytest.approx(b.makespan_s)


class TestShardedObservability:
    def test_metrics_labeled_per_shard(self, keys):
        metrics = MetricsRegistry()
        eng = _sharded(keys, 2, metrics=metrics)
        eng.lookup(keys[:200])
        # the shared engine counter now carries a shard label per series
        fam = metrics.get("engine_queries_total")
        assert fam.label_names == ("op", "shard")
        per_shard = [
            metrics.value("engine_queries_total", op="lookup", shard=str(i))
            for i in range(2)
        ]
        assert all(v and v > 0 for v in per_shard)
        assert sum(per_shard) == 200

    def test_imbalance_gauge_published(self, keys):
        metrics = MetricsRegistry()
        eng = _sharded(keys, 2, metrics=metrics)
        eng.lookup(keys[:500])
        ratio = eng.publish_shard_stats()
        assert metrics.value("shard_imbalance_ratio") == pytest.approx(ratio)
        heat = [
            metrics.value("shard_heat", shard=str(i)) for i in range(2)
        ]
        assert sum(heat) == 500

    def test_rebalance_emits_span_and_counters(self, keys):
        from repro.obs.tracing import Tracer

        metrics = MetricsRegistry()
        tracer = Tracer()
        eng = _sharded(
            keys, 2, mode="range", partition_bytes=2,
            metrics=metrics, tracer=tracer,
        )
        # hammer the low end of the key space: range mode owns it all
        # on shard 0, so the plan must move partitions
        hot = [keys[i] for i in range(200)]
        eng.lookup(hot * 5)
        summary = eng.rebalance()
        assert summary["moved_partitions"] > 0
        assert metrics.value("shard_rebalances_total") == 1
        assert metrics.value("shard_keys_migrated_total") == \
            summary["moved_keys"]
        assert any(
            ev.get("name") == "shard.rebalance" for ev in tracer.events
        )


class TestRebalance:
    def test_rebalance_preserves_content_and_reduces_imbalance(self, keys):
        eng = _sharded(keys, 4, mode="range", partition_bytes=2)
        before = eng.items()
        # zipf traffic over the sorted key list concentrates on the low
        # key range — all owned by shard 0 under range placement
        idx = zipf_indices(len(keys), 8_000, a=1.2, seed=13)
        eng.update([(keys[i], 50_000 + j) for j, i in enumerate(idx)])
        imb = eng.imbalance()
        assert imb > 1.5, "zipf-over-range must be imbalanced"
        summary = eng.rebalance()
        assert summary["moved_keys"] > 0
        assert summary["sim_transfer_s"] > 0
        assert summary["imbalance_after"] < summary["imbalance_before"]
        # migration moved subtrees, never mutated content
        after = dict(eng.items())
        expect = dict(before)
        for j, i in enumerate(idx):
            expect[keys[i]] = 50_000 + j
        assert after == expect
        # serving still works after the re-map, routed by the new table
        assert eng.lookup(keys[:100]) == [
            expect[k] for k in keys[:100]
        ]

    def test_rebalance_noop_under_uniform_traffic(self, keys):
        eng = _sharded(keys, 4)
        eng.lookup([keys[i] for i in uniform_indices(
            len(keys), 4_000, seed=5
        )])
        summary = eng.rebalance(max_moves=64)
        # hash placement already spreads uniform traffic: nothing worth
        # moving, or at most a marginal touch-up
        assert summary["imbalance_after"] <= summary["imbalance_before"]

    def test_heat_resets_after_rebalance(self, keys):
        eng = _sharded(keys, 2, mode="range", partition_bytes=2)
        eng.lookup([keys[i] for i in range(100)] * 3)
        assert eng.router.heat.sum() == 300
        summary = eng.rebalance()
        assert summary["moved_partitions"] > 0
        assert eng.router.heat.sum() == 0


class TestStreamOverlapMergeParallel:
    def test_parallel_merge_takes_max_makespan(self):
        a = StreamOverlapStats(batches=4, serial_s=4.0, makespan_s=2.0,
                               streams=2)
        b = StreamOverlapStats(batches=4, serial_s=4.0, makespan_s=3.0,
                               streams=2)
        a.merge_parallel(b)
        assert a.batches == 8
        assert a.serial_s == 8.0
        assert a.makespan_s == 3.0
        assert a.streams == 4

    def test_sequential_merge_adds_makespans(self):
        a = StreamOverlapStats(batches=4, serial_s=4.0, makespan_s=2.0)
        b = StreamOverlapStats(batches=4, serial_s=4.0, makespan_s=3.0)
        a.add_window(b)
        assert a.makespan_s == 5.0


class TestAnalyticReconciliation:
    """The ``"sharded"`` analytic mode and the executed engine must agree
    that writes now scale with devices."""

    def test_sharded_mode_scales_writes(self):
        from repro.bench.runner import cuart_lookup_log
        from repro.gpusim.cost_model import CostModel
        from repro.gpusim.devices import A100, SERVER_CPU
        from repro.host.dispatcher import DispatchConfig
        from repro.host.multigpu import (
            MultiGpuConfig,
            multi_gpu_throughput,
            scaling_curve,
        )

        log = cuart_lookup_log("random", 65536, 32, 32768)
        kernel = CostModel(A100, l2_scale=1 / 256).kernel_time(log)
        # enough host threads that the shared host stage is not the
        # bottleneck — scaling only shows in a device-bound regime
        cfg = DispatchConfig(batch_size=32768, host_threads=64, key_bytes=32)

        t1 = multi_gpu_throughput(
            kernel, cfg, A100, SERVER_CPU, MultiGpuConfig(1, "sharded")
        ).throughput_mops
        t4 = multi_gpu_throughput(
            kernel, cfg, A100, SERVER_CPU, MultiGpuConfig(4, "sharded")
        ).throughput_mops
        upd4 = multi_gpu_throughput(
            kernel, cfg, A100, SERVER_CPU, MultiGpuConfig(4, "update")
        ).throughput_mops
        assert t4 >= 3.0 * t1, "analytic sharded writes must scale"
        assert t4 > upd4, "sharding must beat broadcast for writes"
        curve = scaling_curve(
            kernel, cfg, A100, SERVER_CPU, max_devices=8,
            workload="sharded",
        )
        rates = [r for _, r in curve]
        assert rates == sorted(rates)

    def test_analytic_curve_reconciles_with_executed_engine(self, keys):
        """Both the analytic model and the executed ShardedEngine must
        report >= 3x write throughput at 4 devices vs 1 (the analytic
        device stages divide by n; the executed makespan is the slowest
        shard's StreamScheduler window)."""
        from repro.bench.runner import cuart_lookup_log
        from repro.gpusim.cost_model import CostModel
        from repro.gpusim.devices import A100, SERVER_CPU
        from repro.host.dispatcher import DispatchConfig
        from repro.host.multigpu import MultiGpuConfig, multi_gpu_throughput

        def executed_makespan(n):
            eng = _sharded(keys, n, batch_size=256)
            upd = [
                (keys[i], 1_000 + j) for j, i in enumerate(
                    uniform_indices(len(keys), 8_000, seed=3)
                )
            ]
            eng.submit("update", upd)
            return eng.drain().makespan_s

        executed_scale = executed_makespan(1) / executed_makespan(4)

        log = cuart_lookup_log("random", 65536, 32, 32768)
        kernel = CostModel(A100, l2_scale=1 / 256).kernel_time(log)
        cfg = DispatchConfig(batch_size=32768, host_threads=64, key_bytes=32)
        analytic = [
            multi_gpu_throughput(
                kernel, cfg, A100, SERVER_CPU, MultiGpuConfig(n, "sharded")
            ).throughput_mops
            for n in (1, 4)
        ]
        analytic_scale = analytic[1] / analytic[0]
        assert executed_scale >= 3.0
        assert analytic_scale >= 3.0


class TestShardedMixedExecutor:
    def test_mixed_stream_with_scans(self, keys):
        eng = _sharded(keys, 4)
        single = CuartEngine(batch_size=256)
        single.populate([(k, i + 1) for i, k in enumerate(keys)])
        single.map_to_device()

        mix = QueryMix(lookups=0.5, updates=0.3, deletes=0.2)
        stream = list(mixed_queries(keys, 3_000, mix, seed=21))
        # splice in scans: global barriers crossing every shard
        stream.insert(1_000, ("scan", (keys[10], keys[600])))
        stream.insert(2_000, ("scan", (keys[100], keys[1_500])))

        res_s, rep_s = ShardedMixedExecutor(eng).run(stream)
        res_o, rep_o = MixedWorkloadExecutor(single).run(list(stream))
        assert res_s == res_o
        assert rep_s.operations == rep_o.operations == len(stream)
        assert rep_s.scans == 2
        assert rep_s.records_scanned == rep_o.records_scanned
        assert (rep_s.hits, rep_s.misses) == (rep_o.hits, rep_o.misses)
        assert rep_s.stream_overlap["batches"] > 0

    def test_report_percentiles_present(self, keys):
        eng = _sharded(keys, 2)
        stream = list(mixed_queries(keys, 1_000, QueryMix(), seed=5))
        _, rep = ShardedMixedExecutor(eng).run(stream)
        assert rep.latency_percentiles_by_op
        for summary in rep.latency_percentiles_by_op.values():
            assert summary["count"] > 0
            assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_config_kwargs_conflict_rejected(self):
        with pytest.raises(TypeError):
            ShardedEngine(EngineConfig(), batch_size=64)
