"""Unit tests for the dispatch pipeline model (sections 4.1/4.3)."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import A100, SERVER_CPU
from repro.gpusim.transactions import TransactionLog
from repro.host.dispatcher import (
    DispatchConfig,
    HostCostParameters,
    pipeline_throughput,
)


def kernel_timing(tx=100_000, threads=32768):
    log = TransactionLog()
    log.launched_threads = threads
    log.begin_round(threads)
    log.record(64, tx)
    log.rounds[-1].distinct_bytes = 1 << 30
    return CostModel(A100, l2_scale=1e-6).kernel_time(log)


class TestDispatchConfig:
    def test_defaults_match_paper(self):
        cfg = DispatchConfig()
        assert cfg.batch_size == 32768  # section 4.3
        assert cfg.host_threads == 8

    def test_invalid_api(self):
        with pytest.raises(SimulationError):
            DispatchConfig(api="vulkan")

    def test_invalid_sizes(self):
        with pytest.raises(SimulationError):
            DispatchConfig(batch_size=0)


class TestPipelineThroughput:
    def test_async_beats_sync_for_same_kernel(self):
        k = kernel_timing()
        a = pipeline_throughput(k, DispatchConfig(api="cuda"), A100, SERVER_CPU)
        s = pipeline_throughput(
            k.total_s, DispatchConfig(api="sync"), A100, SERVER_CPU
        )
        assert a.throughput_mops > s.throughput_mops

    def test_threads_help_until_other_stage_binds(self):
        k = kernel_timing()
        rates = [
            pipeline_throughput(
                k, DispatchConfig(host_threads=t), A100, SERVER_CPU
            ).throughput_mops
            for t in (1, 2, 4, 8, 64)
        ]
        assert rates == sorted(rates)
        assert rates[-1] == pytest.approx(rates[-2], rel=0.5)  # saturation

    def test_float_kernel_accepted(self):
        r = pipeline_throughput(1e-4, DispatchConfig(), A100, SERVER_CPU)
        assert r.throughput_mops > 0

    def test_bigger_keys_slow_pcie(self):
        k = kernel_timing()
        small = pipeline_throughput(
            k, DispatchConfig(key_bytes=8, host_threads=64), A100, SERVER_CPU
        )
        big = pipeline_throughput(
            k, DispatchConfig(key_bytes=64, host_threads=64), A100, SERVER_CPU
        )
        assert small.throughput_mops >= big.throughput_mops

    def test_sync_extra_cost_charged(self):
        k = kernel_timing()
        cheap = pipeline_throughput(
            k.total_s,
            DispatchConfig(api="sync", host_threads=1),
            A100, SERVER_CPU,
        )
        costly = pipeline_throughput(
            k.total_s,
            DispatchConfig(
                api="sync", host_threads=1,
                host_costs=HostCostParameters(sync_extra_per_batch_s=5e-3),
            ),
            A100, SERVER_CPU,
        )
        assert costly.throughput_mops < cheap.throughput_mops

    def test_thread_count_capped_by_cpu(self):
        k = kernel_timing()
        a = pipeline_throughput(
            k, DispatchConfig(host_threads=10_000), A100, SERVER_CPU
        )
        b = pipeline_throughput(
            k, DispatchConfig(host_threads=SERVER_CPU.threads), A100, SERVER_CPU
        )
        assert a.throughput_mops == pytest.approx(b.throughput_mops)
