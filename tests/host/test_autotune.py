"""Unit tests for the dispatch auto-tuner (the fig-8/9 exploration as a
function)."""

import pytest

from repro.cuart.layout import CuartLayout
from repro.cuart.root_table import RootTable
from repro.errors import SimulationError
from repro.gpusim.devices import A100, SERVER_CPU
from repro.host.autotune import TunePoint, autotune_dispatch
from repro.workloads import build_tree, random_keys


@pytest.fixture(scope="module")
def tuned():
    keys = random_keys(4000, 16, seed=131)
    layout = CuartLayout(build_tree(keys))
    table = RootTable(layout, k=2)
    result = autotune_dispatch(
        layout, keys, A100, SERVER_CPU,
        root_table=table,
        batch_grid=(2048, 8192, 32768),
        thread_grid=(1, 4, 8, 16),
        l2_scale=1 / 256,
        seed=5,
    )
    return result


class TestAutotune:
    def test_recommends_from_the_grids(self, tuned):
        assert tuned.config.batch_size in (2048, 8192, 32768)
        assert tuned.config.host_threads in (1, 4, 8, 16)

    def test_recommendation_is_the_surface_max(self, tuned):
        best_rate = max(tuned.surface.values())
        assert tuned.throughput_mops >= 0.99 * best_rate

    def test_surface_complete(self, tuned):
        assert len(tuned.surface) == 3 * 4
        assert all(v > 0 for v in tuned.surface.values())

    def test_more_threads_never_hurt_in_model(self, tuned):
        for batch in (2048, 8192, 32768):
            rates = [tuned.surface[(batch, t)] for t in (1, 4, 8, 16)]
            assert rates == sorted(rates)

    def test_prefers_the_papers_regime(self, tuned):
        # the paper found batches >= 8Ki necessary for good load (§4.3)
        assert tuned.config.batch_size >= 8192

    def test_describe(self, tuned):
        text = tuned.describe()
        assert "batch=" in text and "MOps/s" in text


class TestTunePointSurface:
    def test_keys_are_tune_points(self, tuned):
        for point in tuned.surface:
            assert isinstance(point, TunePoint)
            assert point.batch == point[0]
            assert point.threads == point[1]

    def test_plain_tuples_index_interchangeably(self, tuned):
        point = next(iter(tuned.surface))
        assert tuned.surface[(point.batch, point.threads)] == \
            tuned.surface[point]
        assert (point.batch, point.threads) == point

    def test_iteration_order_is_sweep_order(self, tuned):
        batches = [p.batch for p in tuned.surface]
        assert batches == sorted(batches)  # batch-major
        for batch in (2048, 8192, 32768):
            threads = [p.threads for p in tuned.surface if p.batch == batch]
            assert threads == sorted(threads)  # thread-minor


class TestAsDispatchConfig:
    def test_no_overrides_returns_the_winner(self, tuned):
        assert tuned.as_dispatch_config() is tuned.config

    def test_overrides_replace_fields(self, tuned):
        cfg = tuned.as_dispatch_config(host_threads=2)
        assert cfg.host_threads == 2
        assert cfg.batch_size == tuned.config.batch_size
        assert tuned.config.host_threads != 2 or cfg is not tuned.config


class TestBestUnder:
    def test_unconstrained_matches_recommendation(self, tuned):
        point = tuned.best_under()
        assert tuned.surface[point] == max(tuned.surface.values())

    def test_cap_restricts_the_region(self, tuned):
        point = tuned.best_under(max_batch=8192)
        assert point.batch <= 8192
        capped = {p: r for p, r in tuned.surface.items() if p.batch <= 8192}
        assert tuned.surface[point] == max(capped.values())

    def test_empty_region_raises(self, tuned):
        with pytest.raises(SimulationError):
            tuned.best_under(max_batch=1)
