"""Integration tests: the end-to-end engines against a dict oracle."""

import numpy as np
import pytest

from repro.cuart.layout import LongKeyStrategy
from repro.errors import ReproError
from repro.host.engine import CuartEngine, GrtEngine
from repro.workloads import lookup_queries, random_keys, update_queries


@pytest.fixture(scope="module")
def workload():
    keys = random_keys(1500, 12, seed=77)
    oracle = {k: i for i, k in enumerate(keys)}
    return keys, oracle


def build_cuart(keys, **kw):
    eng = CuartEngine(batch_size=512, **kw)
    eng.populate((k, i) for i, k in enumerate(keys))
    eng.map_to_device()
    return eng


class TestCuartEngine:
    def test_lookup_oracle(self, workload):
        keys, oracle = workload
        eng = build_cuart(keys)
        queries = lookup_queries(keys, 800, hit_rate=0.8, seed=5)
        got = eng.lookup(queries)
        assert got == [oracle.get(q) for q in queries]

    def test_lookup_before_map_raises(self, workload):
        keys, _ = workload
        eng = CuartEngine(batch_size=512)
        eng.populate([(keys[0], 0)])
        with pytest.raises(ReproError):
            eng.lookup([keys[0]])

    def test_report_populated(self, workload):
        keys, _ = workload
        eng = build_cuart(keys)
        eng.lookup(keys[:600])
        rep = eng.last_report
        assert rep.operation == "lookup"
        assert rep.queries == 600
        assert rep.batches == 2
        assert rep.end_to_end_mops > 0
        assert rep.kernel_mops > 0
        assert rep.transactions_per_query > 1

    def test_update_then_lookup(self, workload):
        keys, _ = workload
        eng = build_cuart(keys)
        ups = update_queries(keys, 300, seed=9)
        found = eng.update(ups)
        assert all(found)
        final = {}
        for k, v in ups:
            final[k] = v
        got = eng.lookup(list(final))
        assert got == [final[k] for k in final]

    def test_update_order_within_batch(self, workload):
        keys, _ = workload
        eng = build_cuart(keys)
        eng.update([(keys[0], 111), (keys[0], 222)])
        assert eng.lookup([keys[0]]) == [222]

    def test_delete(self, workload):
        keys, oracle = workload
        eng = build_cuart(keys)
        out = eng.delete(keys[:5])
        assert all(out)
        got = eng.lookup(keys[:6])
        assert got[:5] == [None] * 5
        assert got[5] == oracle[keys[5]]

    def test_range_and_prefix(self, workload):
        keys, oracle = workload
        eng = build_cuart(keys)
        ordered = sorted(keys)
        got = eng.range(ordered[10], ordered[20])
        assert [k for k, _ in got] == ordered[10:21]
        pref = ordered[100][:2]
        got_p = eng.prefix(pref)
        assert [k for k, _ in got_p] == [k for k in ordered if k.startswith(pref)]

    def test_with_root_table(self, workload):
        keys, oracle = workload
        eng = build_cuart(keys, root_table_depth=2)
        got = eng.lookup(keys[:200])
        assert got == [oracle[k] for k in keys[:200]]

    def test_host_link_long_keys_resolved(self):
        long_key = b"N" * 48
        eng = CuartEngine(batch_size=512, long_keys=LongKeyStrategy.HOST_LINK)
        eng.populate([(long_key, 7), (b"small", 1)])
        eng.map_to_device()
        assert eng.lookup([long_key, b"small", b"N" * 47 + b"?"]) == [7, 1, None]

    def test_remap_after_structural_change(self, workload):
        keys, _ = workload
        eng = build_cuart(keys)
        eng.populate([(b"\xaa" * 12, 42)])
        from repro.errors import StaleLayoutError

        with pytest.raises(StaleLayoutError):
            eng.lookup([keys[0]])
        eng.map_to_device()
        assert eng.lookup([b"\xaa" * 12]) == [42]


class TestGrtEngine:
    def test_lookup_oracle(self, workload):
        keys, oracle = workload
        eng = GrtEngine(batch_size=512)
        eng.populate((k, i) for i, k in enumerate(keys))
        eng.map_to_device()
        queries = lookup_queries(keys, 600, hit_rate=0.7, seed=6)
        assert eng.lookup(queries) == [oracle.get(q) for q in queries]

    def test_update(self, workload):
        keys, _ = workload
        eng = GrtEngine(batch_size=512)
        eng.populate((k, i) for i, k in enumerate(keys))
        eng.map_to_device()
        found = eng.update([(keys[0], 999), (keys[1], 888)])
        assert found == [True, True]
        assert eng.lookup(keys[:2]) == [999, 888]

    def test_engines_agree(self, workload):
        keys, _ = workload
        cu = build_cuart(keys)
        gr = GrtEngine(batch_size=512)
        gr.populate((k, i) for i, k in enumerate(keys))
        gr.map_to_device()
        queries = lookup_queries(keys, 500, hit_rate=0.5, seed=8)
        assert cu.lookup(queries) == gr.lookup(queries)

    def test_reports_slower_than_cuart(self, workload):
        keys, _ = workload
        cu = build_cuart(keys)
        gr = GrtEngine(batch_size=512)
        gr.populate((k, i) for i, k in enumerate(keys))
        gr.map_to_device()
        cu.lookup(keys[:512])
        gr.lookup(keys[:512])
        assert (
            cu.last_report.transactions_per_query
            < gr.last_report.transactions_per_query
        )


class TestGrtEngineRange:
    def test_range_matches_cuart(self, workload):
        keys, oracle = workload
        cu = build_cuart(keys)
        gr = GrtEngine(batch_size=512)
        gr.populate((k, i) for i, k in enumerate(keys))
        gr.map_to_device()
        ordered = sorted(keys)
        lo, hi = ordered[100], ordered[160]
        assert gr.range(lo, hi) == cu.range(lo, hi)
        assert gr.last_report.operation == "range"
