"""Unit tests for query coalescing."""

import pytest

from repro.errors import ReproError
from repro.host.batching import QueryBatcher, coalesce
from repro.util.keys import encode_int


KEYS = [encode_int(i, 4) for i in range(10)]


class TestCoalesce:
    def test_splits_into_batches(self):
        batches = coalesce(KEYS, 4)
        assert [b.size for b in batches] == [4, 4, 2]

    def test_origin_positions(self):
        batches = coalesce(KEYS, 4)
        assert batches[1].origin.tolist() == [4, 5, 6, 7]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ReproError):
            coalesce(KEYS, 3)

    def test_roundtrip_contents(self):
        batches = coalesce(KEYS, 8)
        seen = {}
        for b in batches:
            for j, pos in enumerate(b.origin):
                seen[int(pos)] = b.keys_mat[j, : b.key_lens[j]].tobytes()
        assert [seen[i] for i in range(10)] == KEYS

    def test_empty(self):
        assert coalesce([], 4) == []


class TestQueryBatcher:
    def test_emits_full_batches(self):
        qb = QueryBatcher(4, width=4)
        emitted = list(qb.add_many(KEYS))
        assert len(emitted) == 2
        assert all(b.size == 4 for b in emitted)

    def test_flush_partial(self):
        qb = QueryBatcher(4, width=4)
        list(qb.add_many(KEYS))
        tail = qb.flush()
        assert tail is not None and tail.size == 2
        assert qb.flush() is None

    def test_origin_continuity(self):
        qb = QueryBatcher(4, width=4)
        batches = list(qb.add_many(KEYS)) + [qb.flush()]
        origins = [int(p) for b in batches for p in b.origin]
        assert origins == list(range(10))

    def test_invalid_width(self):
        with pytest.raises(ReproError):
            QueryBatcher(4, width=0)

    def test_add_returns_none_until_full(self):
        qb = QueryBatcher(2, width=4)
        assert qb.add(KEYS[0]) is None
        assert qb.add(KEYS[1]) is not None
