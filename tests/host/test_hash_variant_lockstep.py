"""Cross-variant lockstep: the bucketed conflict table is a pure device
cost optimization, so an engine configured with it must be outwardly
indistinguishable from the linear one — same results on the same seeded
mixed stream, byte-identical mapped layouts, same behaviour under fault
injection and under hash-table-full recovery.  Only the charged device
costs may differ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.faults import FaultConfig
from repro.host.config import EngineConfig
from repro.host.engine import CuartEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.host.resilience import ResiliencePolicy
from repro.obs.metrics import MetricsRegistry
from repro.workloads.queries import QueryMix, mixed_queries
from repro.workloads.synthetic import dense_keys
from tests.conftest import int_keys

N_OPS = 20_000
N_KEYS = 1_500


def _run(variant, *, faults=None, resilience=None):
    keys = dense_keys(N_KEYS)
    eng = CuartEngine(EngineConfig(
        batch_size=256, hash_table=variant,
        faults=faults, resilience=resilience,
    ))
    eng.populate([(k, i) for i, k in enumerate(keys)])
    eng.map_to_device()
    stream = mixed_queries(keys, N_OPS, QueryMix(), seed=11)
    results, report = MixedWorkloadExecutor(eng).run(stream)
    return eng, results, report


def _assert_saved_layouts_identical(eng_a, eng_b, tmp_path):
    eng_a.map_to_device()
    eng_b.map_to_device()
    pa, pb = tmp_path / "a.npz", tmp_path / "b.npz"
    eng_a.save(pa)
    eng_b.save(pb)
    with np.load(pa) as za, np.load(pb) as zb:
        assert sorted(za.files) == sorted(zb.files)
        for name in za.files:
            assert np.array_equal(za[name], zb[name]), name


class TestMixedStreamLockstep:
    @pytest.fixture(scope="class")
    def pair(self):
        return _run("linear"), _run("bucketed")

    def test_results_identical(self, pair):
        (_, lin_results, _), (_, buc_results, _) = pair
        assert len(lin_results) == len(buc_results) > 0
        assert lin_results == buc_results

    def test_accounting_identical(self, pair):
        (_, _, lin_rep), (_, _, buc_rep) = pair
        assert lin_rep.hits == buc_rep.hits
        assert lin_rep.misses == buc_rep.misses
        assert lin_rep.update_misses == buc_rep.update_misses
        assert lin_rep.delete_misses == buc_rep.delete_misses

    def test_layouts_byte_identical(self, pair, tmp_path):
        (lin_eng, _, _), (buc_eng, _, _) = pair
        assert list(lin_eng.tree.items()) == list(buc_eng.tree.items())
        _assert_saved_layouts_identical(lin_eng, buc_eng, tmp_path)


class TestFaultReplayLockstep:
    @pytest.mark.parametrize("variant", ["linear", "bucketed"])
    def test_faulty_run_matches_fault_free_oracle(self, variant, tmp_path):
        faulty_eng, faulty_results, report = _run(
            variant,
            faults=FaultConfig.uniform(0.01, seed=321),
            resilience=ResiliencePolicy(),
        )
        oracle_eng, oracle_results, _ = _run(variant)
        # the injector fired and the retries replayed exactly-once
        assert faulty_eng._injector.total_injected > 0
        assert report.ops_by_status.get("FAILED", 0) == 0
        assert faulty_results == oracle_results
        _assert_saved_layouts_identical(faulty_eng, oracle_eng, tmp_path)


class TestHashGrowRecovery:
    @pytest.mark.parametrize("variant", ["linear", "bucketed"])
    def test_full_table_grows_and_batch_succeeds(self, variant):
        # 8 slots cannot dedup 500 distinct keys: the resilience layer
        # must x2-grow the table (same recovery path for both layouts)
        # until the batch fits, then serve it correctly
        metrics = MetricsRegistry()
        eng = CuartEngine(EngineConfig(
            hash_slots=8, hash_table=variant,
            resilience=ResiliencePolicy(), metrics=metrics,
        ))
        keys = int_keys(range(1, 501))
        eng.populate([(k, i) for i, k in enumerate(keys)])
        eng.map_to_device()
        res = eng.update([(k, 7_000 + i) for i, k in enumerate(keys)])
        assert res.found_array.all()
        assert eng.hash_slots >= 512
        assert metrics.value(
            "resilience_recoveries_total", kind="hash-grow"
        ) >= 1
        got = eng.lookup(keys)
        assert got.to_list() == [7_000 + i for i in range(len(keys))]


class TestConfigAndMetrics:
    def test_unknown_variant_rejected(self):
        with pytest.raises(SimulationError) as ei:
            EngineConfig(hash_table="quadratic")
        assert ei.value.context["value"] == "quadratic"
        with pytest.raises(SimulationError):
            CuartEngine(hash_table="quadratic")

    @pytest.mark.parametrize("variant", ["linear", "bucketed"])
    def test_hashtable_counters_exported(self, variant):
        metrics = MetricsRegistry()
        eng = CuartEngine(EngineConfig(
            hash_table=variant, metrics=metrics,
        ))
        keys = int_keys(range(1, 201))
        eng.populate([(k, i) for i, k in enumerate(keys)])
        eng.map_to_device()
        eng.update([(k, 1) for k in keys])
        for name in ("hashtable_transactions_total",
                     "hashtable_probe_groups_total",
                     "hashtable_probe_steps_total",
                     "hashtable_atomics_total"):
            assert metrics.value(name, variant=variant) > 0, name
        load = metrics.value("hashtable_load_factor", variant=variant)
        assert load["count"] >= 1
        assert 0.0 <= load["max"] <= 1.0

    def test_bucketed_exports_fewer_transactions(self):
        # same workload, both variants: the exported counter series
        # itself must show the coalescing win
        totals = {}
        for variant in ("linear", "bucketed"):
            metrics = MetricsRegistry()
            eng = CuartEngine(EngineConfig(
                hash_slots=256, hash_table=variant, metrics=metrics,
            ))
            keys = int_keys(range(1, 201))
            eng.populate([(k, i) for i, k in enumerate(keys)])
            eng.map_to_device()
            eng.update([(k, 9) for k in keys] * 8)  # duplicate-heavy
            totals[variant] = metrics.value(
                "hashtable_transactions_total", variant=variant
            )
        assert totals["bucketed"] < totals["linear"]
