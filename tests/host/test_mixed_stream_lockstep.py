"""Lockstep oracle tests for the pipelined mixed-stream scheduler.

The key-level coalescer + store-to-load forwarding let an interleaved
OLTP stream batch aggressively: same-key reads are answered from the
pending-write overlay, cross-class ops on different keys share no flush,
and ordering edges replace batch-granularity dependency cuts.  These
tests pin the whole executor — coalescer, forwarding, async submit/drain
dispatch — against the scalar sequential oracle: the same stream applied
one op at a time through a twin engine must produce identical per-op
results AND leave **byte-identical serialized device layouts**, including
adversarial read-after-write, write-after-write and duplicate-key-burst
interleavings on hot keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuart.serialize import save_layout
from repro.host.engine import CuartEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.workloads.queries import QueryMix, mixed_queries
from repro.workloads.synthetic import random_keys
from tests.cuart.test_write_path_lockstep import _assert_layouts_equal

SEEDS = [3, 17, 91]


def _engine(keys, *, batch_size=16) -> CuartEngine:
    eng = CuartEngine(batch_size=batch_size)
    eng.populate([(k, i + 1) for i, k in enumerate(keys)])
    eng.map_to_device()
    return eng


def _scalar_oracle(eng: CuartEngine, stream) -> list:
    """Apply the stream one single-op batch at a time, in order; returns
    the lookup results aligned with the stream's lookup ops."""
    out = []
    for kind, payload in stream:
        if kind == "lookup":
            out.append(eng.lookup([payload])[0])
        elif kind == "update":
            eng.update([payload])
        elif kind == "delete":
            eng.delete([payload])
        elif kind == "insert":
            eng.insert([payload])
        else:  # pragma: no cover - streams below never emit scans
            raise AssertionError(kind)
    return out


def _assert_lockstep(keys, stream, *, batch_size=16, tmp_path=None):
    pipelined = _engine(keys, batch_size=batch_size)
    scalar = _engine(keys, batch_size=batch_size)
    results, report = MixedWorkloadExecutor(pipelined).run(stream)
    oracle = _scalar_oracle(scalar, stream)

    assert results == oracle, "per-op lookup results diverged from serial"
    _assert_layouts_equal(pipelined.layout, scalar.layout)
    if tmp_path is not None:
        a, b = tmp_path / "pipelined.npz", tmp_path / "scalar.npz"
        save_layout(pipelined.layout, a)
        save_layout(scalar.layout, b)
        assert a.read_bytes() == b.read_bytes(), (
            "serialized layouts are not byte-identical"
        )
    return report


class TestMixedStreamLockstep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_mixed_stream(self, seed, tmp_path):
        keys = random_keys(256, 12, seed=seed)
        mix = QueryMix(lookups=0.5, updates=0.35, deletes=0.15)
        stream = mixed_queries(keys, 600, mix, seed=seed + 1)
        report = _assert_lockstep(keys, stream, tmp_path=tmp_path)
        assert report.operations == 600
        # key-level tracking: no batch-granularity dependency cuts
        assert report.flush_reasons["write-dependency"] == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_adversarial_hot_key_raw_waw(self, seed, tmp_path):
        """Read-after-write and write-after-write chains concentrated on
        a tiny hot set — the regime that used to force a flush per run
        and now rides the forwarding overlay."""
        rng = np.random.default_rng(seed)
        keys = random_keys(64, 12, seed=seed)
        hot = keys[:6]
        stream = []
        for i in range(500):
            k = hot[int(rng.integers(len(hot)))]
            r = int(rng.integers(5))
            if r == 0:
                stream.append(("update", (k, 10_000 + i)))  # WAW chains
            elif r == 1:
                stream.append(("update", (k, 20_000 + i)))
                stream.append(("lookup", k))  # immediate RAW
            elif r == 2:
                stream.append(("delete", k))
                stream.append(("lookup", k))  # read-after-delete
            else:
                stream.append(("lookup", k))
        report = _assert_lockstep(keys, stream, tmp_path=tmp_path)
        # forwarding must actually engage on this stream
        assert sum(report.forwarded.values()) > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_insert_resurrection_serves_serial_content(self, seed):
        """Delete → insert → read chains on hot keys.  Batched insert
        claims may recycle free-listed leaf slots in a different order
        than sequential singles, so buffer bytes can legitimately differ
        — but every per-op result and the final served key → value map
        must still match the serial oracle exactly."""
        rng = np.random.default_rng(seed + 7)
        keys = random_keys(64, 12, seed=seed)
        hot = keys[:8]
        stream = []
        for i in range(300):
            k = hot[int(rng.integers(len(hot)))]
            r = int(rng.integers(4))
            if r == 0:
                stream.append(("delete", k))
            elif r == 1:
                stream.append(("insert", (k, 30_000 + i)))
                stream.append(("lookup", k))
            elif r == 2:
                stream.append(("update", (k, 40_000 + i)))
            else:
                stream.append(("lookup", k))
        pipelined = _engine(keys)
        scalar = _engine(keys)
        results, _ = MixedWorkloadExecutor(pipelined).run(stream)
        oracle = _scalar_oracle(scalar, stream)
        assert results == oracle
        # both sides serve the identical final key -> value map
        assert pipelined.lookup(list(keys)) == scalar.lookup(list(keys))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_duplicate_key_bursts(self, seed, tmp_path):
        """Bursts of identical ops on one key: duplicate deletes must
        report exactly one hit, duplicate updates are last-writer-wins,
        and the burst boundaries never corrupt neighbouring keys."""
        rng = np.random.default_rng(seed + 40)
        keys = random_keys(48, 12, seed=seed)
        stream = []
        for i in range(120):
            k = keys[int(rng.integers(len(keys)))]
            burst = int(rng.integers(2, 5))
            r = int(rng.integers(3))
            if r == 0:
                stream.extend([("delete", k)] * burst)
            elif r == 1:
                stream.extend(
                    ("update", (k, 1_000 * i + j)) for j in range(burst)
                )
            else:
                stream.extend([("lookup", k)] * burst)
            stream.append(("lookup", keys[int(rng.integers(len(keys)))]))
        _assert_lockstep(keys, stream, tmp_path=tmp_path)

    def test_report_tallies_match_oracle(self):
        """Hit/miss tallies — including forwarded ops that never reach
        the device — agree with a serial replay of the stream."""
        keys = random_keys(128, 12, seed=9)
        mix = QueryMix(lookups=0.6, updates=0.25, deletes=0.15)
        stream = mixed_queries(keys, 400, mix, seed=10)
        eng = _engine(keys)
        results, report = MixedWorkloadExecutor(eng).run(stream)

        state = {k: i + 1 for i, k in enumerate(keys)}
        hits = misses = upd_miss = del_miss = 0
        for kind, payload in stream:
            if kind == "lookup":
                if payload in state:
                    hits += 1
                else:
                    misses += 1
            elif kind == "update":
                if payload[0] in state:
                    state[payload[0]] = payload[1]
                else:
                    upd_miss += 1
            elif kind == "delete":
                if payload in state:
                    del state[payload]
                else:
                    del_miss += 1
        assert (report.hits, report.misses) == (hits, misses)
        assert report.update_misses == upd_miss
        assert report.delete_misses == del_miss
        assert sum(report.flush_reasons.values()) == report.batches
