"""Unit + model tests for the mixed OLTP executor."""

import pytest

from repro.host.engine import CuartEngine
from repro.host.mixed import MixedReport, MixedWorkloadExecutor
from repro.workloads import QueryMix, mixed_queries, random_keys


@pytest.fixture()
def engine():
    keys = random_keys(600, 8, seed=71)
    eng = CuartEngine(batch_size=256, spare=0.25)
    eng.populate((k, i) for i, k in enumerate(keys))
    eng.map_to_device()
    return eng, keys


class TestExecutor:
    def test_pure_lookup_stream(self, engine):
        eng, keys = engine
        stream = [("lookup", k) for k in keys[:50]]
        results, report = MixedWorkloadExecutor(eng).run(stream)
        assert results == list(range(50))
        assert report.lookups == 50 and report.hits == 50

    def test_read_after_write_in_stream_order(self, engine):
        eng, keys = engine
        stream = [
            ("lookup", keys[0]),
            ("update", (keys[0], 999)),
            ("lookup", keys[0]),
        ]
        results, report = MixedWorkloadExecutor(eng).run(stream)
        assert results == [0, 999]
        assert report.updates == 1

    def test_read_after_delete(self, engine):
        eng, keys = engine
        stream = [
            ("delete", keys[5]),
            ("lookup", keys[5]),
            ("lookup", keys[6]),
        ]
        results, report = MixedWorkloadExecutor(eng).run(stream)
        assert results == [None, 6]
        assert report.deletes == 1 and report.misses == 1

    def test_generated_mixed_stream(self, engine):
        eng, keys = engine
        stream = mixed_queries(keys, 400, QueryMix(), seed=3)
        results, report = MixedWorkloadExecutor(eng).run(stream)
        assert report.operations == 400
        assert report.batches >= 3
        assert len(results) == report.lookups
        # deletions can race lookups in the stream, but an op count
        # conservation law always holds
        assert report.hits + report.misses == report.lookups

    def test_unknown_operation_rejected(self, engine):
        eng, _ = engine
        with pytest.raises(ValueError):
            MixedWorkloadExecutor(eng).run([("scan", b"x")])

    def test_simulated_rates_recorded(self, engine):
        eng, keys = engine
        stream = [("lookup", keys[0]), ("update", (keys[1], 5))]
        _, report = MixedWorkloadExecutor(eng).run(stream)
        assert "lookup" in report.simulated_mops
        assert "update" in report.simulated_mops
        assert all(v > 0 for v in report.simulated_mops.values())

    def test_batch_size_splits_runs(self, engine):
        eng, keys = engine
        stream = [("lookup", keys[i % len(keys)]) for i in range(600)]
        _, report = MixedWorkloadExecutor(eng).run(stream)
        assert report.batches >= 3  # 600 lookups / 256 batch size
