"""Tests for engine report contents and edge behaviours."""

import pytest

from repro.gpusim.devices import A100, GTX1070, SERVER_CPU
from repro.host.engine import CuartEngine, GrtEngine
from repro.workloads import random_keys


@pytest.fixture(scope="module")
def small_engine():
    keys = random_keys(500, 8, seed=111)
    eng = CuartEngine(batch_size=128, spare=0.25)
    eng.populate((k, i) for i, k in enumerate(keys))
    eng.map_to_device()
    return eng, keys


class TestReports:
    def test_report_str_is_informative(self, small_engine):
        eng, keys = small_engine
        eng.lookup(keys[:128])
        text = str(eng.last_report)
        assert "lookup" in text
        assert "MOps/s" in text
        assert "tx/query" in text

    def test_operations_labelled(self, small_engine):
        eng, keys = small_engine
        eng.lookup(keys[:10])
        assert eng.last_report.operation == "lookup"
        eng.update([(keys[0], 5)])
        assert eng.last_report.operation == "update"
        eng.delete([keys[1]])
        assert eng.last_report.operation == "delete"
        eng.insert([(b"\xfa" * 8, 1)])
        assert eng.last_report.operation == "insert"
        eng.range(keys[0], keys[0])
        assert eng.last_report.operation == "range"
        eng.prefix(keys[0][:1])
        assert eng.last_report.operation == "prefix"

    def test_batch_count(self, small_engine):
        eng, keys = small_engine
        eng.lookup(keys[:300])
        assert eng.last_report.batches == 3  # 300 / 128 -> 3 batches

    def test_kernel_and_pipeline_rates_positive(self, small_engine):
        eng, keys = small_engine
        eng.lookup(keys[:128])
        rep = eng.last_report
        assert rep.kernel_mops > 0
        assert rep.end_to_end_mops > 0
        assert rep.kernel_s_per_batch > 0
        assert rep.bytes_per_query > 0

    def test_binding_constraint_is_valid(self, small_engine):
        eng, keys = small_engine
        eng.lookup(keys[:128])
        assert eng.last_report.binding_constraint in (
            "memory-command", "latency-chain", "compute",
        )
        assert eng.last_report.pipeline_bottleneck in (
            "host", "pcie", "kernel", "thread-cycle",
        )


class TestDeviceSelection:
    def test_different_devices_different_rates(self):
        keys = random_keys(3000, 16, seed=112)
        rates = {}
        for dev in (A100, GTX1070):
            eng = CuartEngine(batch_size=1024, device=dev, cpu=SERVER_CPU)
            eng.populate((k, i) for i, k in enumerate(keys))
            eng.map_to_device()
            eng.lookup(keys[:1024])
            rates[dev.name] = eng.last_report.kernel_mops
        assert rates[A100.name] > rates[GTX1070.name]

    def test_grt_engine_reports_sync_bottlenecks(self):
        keys = random_keys(500, 8, seed=113)
        eng = GrtEngine(batch_size=128)
        eng.populate((k, i) for i, k in enumerate(keys))
        eng.map_to_device()
        eng.lookup(keys[:128])
        assert eng.last_report.pipeline_bottleneck in (
            "thread-cycle", "pcie", "kernel",
        )


class TestEmptyInputs:
    def test_empty_lookup(self, small_engine):
        eng, _ = small_engine
        assert eng.lookup([]) == []

    def test_empty_update(self, small_engine):
        eng, _ = small_engine
        assert eng.update([]) == []

    def test_empty_delete(self, small_engine):
        eng, _ = small_engine
        assert eng.delete([]) == []


class TestEnginePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        from repro.host.engine import CuartEngine

        keys = random_keys(700, 8, seed=141)
        eng = CuartEngine(batch_size=256, spare=0.25)
        eng.populate((k, i) for i, k in enumerate(keys))
        eng.map_to_device()
        eng.update([(keys[0], 999)])
        eng.delete([keys[1]])
        path = tmp_path / "engine.npz"
        eng.save(path)

        loaded = CuartEngine.load(path, batch_size=256)
        assert len(loaded) == len(keys) - 1  # the deleted key is gone
        assert loaded.lookup([keys[0], keys[1], keys[2]]) == [999, None, 2]

    def test_loaded_engine_fully_operational(self, tmp_path):
        from repro.host.engine import CuartEngine

        keys = random_keys(400, 8, seed=142)
        eng = CuartEngine(batch_size=128, spare=0.5)
        eng.populate((k, i) for i, k in enumerate(keys))
        eng.map_to_device()
        path = tmp_path / "ops.npz"
        eng.save(path)

        loaded = CuartEngine.load(path, batch_size=128, spare=0.5)
        # every operation class works on the loaded engine
        loaded.update([(keys[3], 7)])
        loaded.delete([keys[4]])
        loaded.insert([(b"\xf9" * 8, 11)])
        ordered = sorted(keys)
        got = loaded.range(ordered[0], ordered[10])
        assert len(got) >= 10
        assert loaded.lookup([keys[3], keys[4], b"\xf9" * 8]) == [7, None, 11]
        # and a re-map from the reconstructed tree stays consistent
        loaded.map_to_device()
        assert loaded.lookup([keys[3], b"\xf9" * 8]) == [7, 11]
