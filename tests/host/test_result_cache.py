"""The hot-key result cache must be invisible except in speed.

A cache-enabled :class:`~repro.host.engine.CuartEngine` is run in
lockstep with a cache-disabled twin through interleaved lookup / update /
delete / insert streams; every lookup batch must return identical
values.  The cache's own mechanics (LRU eviction, negative caching,
invalidation on mutation) are pinned separately.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.cache import HotKeyCache
from repro.host.engine import CuartEngine
from repro.workloads import random_keys


def build(keys, cache_size):
    eng = CuartEngine(batch_size=128, cache_size=cache_size)
    eng.populate((k, i) for i, k in enumerate(keys))
    eng.map_to_device()
    return eng


class TestCacheTransparency:
    @pytest.mark.slow
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_lockstep_with_uncached_engine(self, data):
        keys = random_keys(160, 8, seed=3)
        cached = build(keys, cache_size=32)  # small: forces evictions
        plain = build(keys, cache_size=0)
        missing = [bytes([255] * 8 + [i]) for i in range(8)]
        pool = keys + missing
        pick = st.lists(
            st.integers(0, len(pool) - 1), min_size=1, max_size=40
        )
        for step in range(6):
            op = data.draw(
                st.sampled_from(["lookup", "update", "delete", "insert"])
            )
            qs = [pool[i] for i in data.draw(pick)]
            if op == "lookup":
                assert list(cached.lookup(qs)) == list(plain.lookup(qs))
            elif op == "update":
                items = [(k, 10_000 + step) for k in qs]
                assert list(cached.update(items)) == list(plain.update(items))
            elif op == "delete":
                assert list(cached.delete(qs)) == list(plain.delete(qs))
            else:
                items = [(k, 20_000 + step) for k in qs]
                ra = cached.insert(items)
                rb = plain.insert(items)
                assert ra.summary["device_inserted"] == \
                    rb.summary["device_inserted"]
                assert ra.summary["updated"] == rb.summary["updated"]
            # every key's serve state must agree after each mutation
            assert list(cached.lookup(pool)) == list(plain.lookup(pool))

    def test_update_refreshes_cached_value(self):
        keys = random_keys(64, 8, seed=4)
        eng = build(keys, cache_size=16)
        k = keys[0]
        assert eng.lookup([k]) == [0]  # now cached
        eng.update([(k, 777)])
        assert eng.lookup([k]) == [777]

    def test_delete_invalidates_cached_value(self):
        keys = random_keys(64, 8, seed=5)
        eng = build(keys, cache_size=16)
        k = keys[1]
        assert eng.lookup([k]) == [1]
        assert all(eng.delete([k]))
        assert eng.lookup([k]) == [None]


class TestCacheMechanics:
    def test_repeat_lookups_hit(self):
        keys = random_keys(64, 8, seed=6)
        eng = build(keys, cache_size=16)
        eng.lookup([keys[0], keys[0], keys[0]])
        # one distinct key: one miss, and the two repeats collapsed by
        # the dedup pass count as hits of the hot-key tier
        assert eng.cache.stats.misses == 1
        assert eng.cache.stats.hits == 2
        eng.lookup([keys[0]])
        assert eng.cache.stats.hits == 3
        assert 0 < eng.cache.stats.hit_rate < 1

    def test_negative_caching(self):
        keys = random_keys(64, 8, seed=7)
        eng = build(keys, cache_size=16)
        ghost = bytes(8)
        assert eng.lookup([ghost]) == [None]
        assert eng.lookup([ghost]) == [None]
        assert eng.cache.stats.hits == 1  # the second probe never dispatched

    def test_eviction_bounds_residency(self):
        keys = random_keys(64, 8, seed=8)
        eng = build(keys, cache_size=4)
        eng.lookup(keys[:12])
        assert len(eng.cache) <= 4
        assert eng.cache.stats.evictions >= 8

    def test_lru_keeps_the_hot_key(self):
        cache = HotKeyCache(2)
        cache.put(b"hot", 1)
        cache.put(b"cold", 2)
        cache.get(b"hot")  # refresh recency
        cache.put(b"new", 3)  # evicts the coldest: b"cold"
        assert b"hot" in cache and b"new" in cache and b"cold" not in cache

    def test_remap_clears_cache(self):
        keys = random_keys(64, 8, seed=9)
        eng = build(keys, cache_size=16)
        eng.lookup(keys[:8])
        assert len(eng.cache) > 0
        eng.map_to_device()
        assert len(eng.cache) == 0

    def test_zero_capacity_disables_cache(self):
        keys = random_keys(16, 8, seed=10)
        eng = build(keys, cache_size=0)
        assert eng.cache is None

    def test_negative_capacity_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            HotKeyCache(-1)
