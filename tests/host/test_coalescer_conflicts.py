"""Unit tests for the key-level conflict tracker in
:class:`repro.host.batching.OpClassCoalescer` and the engine's async
submit/drain dispatch surface."""

from __future__ import annotations

import pytest

from repro.host.batching import OpClassCoalescer
from repro.host.engine import CuartEngine
from repro.workloads.synthetic import random_keys


def _flushed(out):
    """Flatten add() output into [(kind, n_payloads), ...]."""
    return [(k, len(ps)) for k, ps in out]


class TestKeyLevelCoalescing:
    def test_disjoint_keys_never_flush(self):
        """Cross-class ops on different keys coexist — the legacy
        write-dependency cut is gone."""
        coal = OpClassCoalescer(64)
        for i in range(20):
            assert coal.add("lookup", f"k{i}", f"k{i}") == ()
            assert coal.add("update", f"u{i}", (f"u{i}", i)) == ()
            assert coal.add("delete", f"d{i}", f"d{i}") == ()
        assert len(coal) == 60
        assert coal.flush_reasons()["write-dependency"] == 0
        assert coal.flush_reasons()["key-conflict"] == 0

    def test_same_key_read_after_write_records_edge(self):
        """lookup k after update k: no flush, but the drain releases the
        update batch before the lookup batch."""
        coal = OpClassCoalescer(64)
        assert coal.add("update", "k", ("k", 1)) == ()
        assert coal.add("lookup", "k", "k") == ()
        order = [kind for kind, _ in coal.drain()]
        assert order == ["update", "lookup"]

    def test_cycle_forces_key_conflict_flush(self):
        """update k → lookup k → update k: the second update cannot both
        follow the queued lookup and share the queued update's batch."""
        coal = OpClassCoalescer(64)
        coal.add("update", "k", ("k", 1))
        coal.add("lookup", "k", "k")
        out = coal.add("update", "k", ("k", 2))
        # the conflicting queues flushed, in dependency order
        assert [k for k, _ in out] == ["update", "lookup"]
        assert coal.flush_reasons()["key-conflict"] >= 1
        # the new update is queued afresh
        assert [(k, len(ps)) for k, ps in coal.drain()] == [("update", 1)]

    def test_duplicate_delete_flushes_own_class(self):
        """Deletes don't self-commute: the second delete of one key must
        observe the first's effect, so the delete queue flushes."""
        coal = OpClassCoalescer(64)
        coal.add("delete", "k", "k")
        out = coal.add("delete", "k", "k")
        assert _flushed(out) == [("delete", 1)]
        assert coal.flush_reasons()["key-conflict"] == 1

    def test_repeated_lookups_and_updates_commute(self):
        """Same-key repeats of self-commuting classes share one batch."""
        coal = OpClassCoalescer(64)
        for i in range(10):
            assert coal.add("lookup", "k", "k") == ()
        for i in range(10):
            assert coal.add("update", "u", ("u", i)) == ()
        assert _flushed(coal.drain()) == [("lookup", 10), ("update", 10)]
        assert coal.flush_reasons()["key-conflict"] == 0

    def test_size_full_flushes_ancestors_first(self):
        """A full queue drags its DAG ancestors ahead of it, charged to
        dep-order; the full queue itself is charged to size-full."""
        coal = OpClassCoalescer(4)
        coal.add("update", "k", ("k", 1))
        out = []
        out.extend(coal.add("lookup", "k", "k"))  # edge: update -> lookup
        for i in range(3):
            out.extend(coal.add("lookup", f"x{i}", f"x{i}"))
        assert [k for k, _ in out] == ["update", "lookup"]
        reasons = coal.flush_reasons()
        assert reasons["size-full"] == 1
        assert reasons["dep-order"] == 1

    def test_flush_reason_schema_complete(self):
        coal = OpClassCoalescer(8)
        assert set(coal.flush_reasons()) == {
            "size-full", "write-dependency", "key-conflict",
            "dep-order", "drain", "deadline",
        }


class TestEngineSubmitDrain:
    @pytest.fixture()
    def eng(self):
        keys = random_keys(512, 12, seed=4)
        eng = CuartEngine(batch_size=128)
        eng.populate([(k, i + 1) for i, k in enumerate(keys)])
        eng.map_to_device()
        return eng, keys

    def test_submit_matches_direct_call(self, eng):
        eng, keys = eng
        direct = eng.lookup(list(keys[:64]))
        via_submit = eng.submit("lookup", list(keys[:64]))
        assert list(direct) == list(via_submit)

    def test_submit_accounts_stream_batches(self, eng):
        eng, keys = eng
        eng.submit("lookup", list(keys[:256]))  # 2 batches of 128
        eng.submit("update", [(k, 9) for k in keys[:128]])
        stats = eng.drain()
        assert stats.batches == 3
        assert stats.serial_s > stats.makespan_s  # overlap happened
        assert eng.drain().batches == 0  # window closed

    def test_submit_rejects_unknown_kind(self, eng):
        eng, _ = eng
        with pytest.raises(Exception):
            eng.submit("compact", [])

    def test_single_stream_engine_reports_no_overlap(self):
        keys = random_keys(256, 12, seed=6)
        eng = CuartEngine(batch_size=64, streams=1)
        eng.populate([(k, i + 1) for i, k in enumerate(keys)])
        eng.map_to_device()
        eng.submit("lookup", list(keys))
        stats = eng.drain()
        assert stats.batches == 4
        assert stats.saved_s == pytest.approx(0.0, abs=1e-12)
