"""Lockstep oracle tests for the key-space-sharded engine.

The :class:`~repro.host.sharding.ShardedEngine` splits the key space
over N simulated devices; deterministic routing makes every same-key
conflict shard-local, so the sharded execution of any mixed stream must
be serial-equivalent to a single engine applying the same stream.  These
tests pin that claim all the way down to **byte-identical canonical
serialization**: since each shard owns its own device layout, both sides
are re-serialized through a fresh single engine built from their sorted
``items()`` and the resulting ``save_layout`` archives are compared
byte for byte.  Adversarial cross-shard read-after-write /
write-after-write bursts, per-shard fault injection under the retry
policy, and the ``n_shards=1`` degenerate case are covered.
"""

from __future__ import annotations

import pytest

from repro.cuart.serialize import save_layout
from repro.gpusim.faults import FaultConfig
from repro.host.engine import CuartEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.host.resilience import ResiliencePolicy
from repro.host.sharding import (
    ShardedEngine,
    ShardedMixedExecutor,
    ShardingConfig,
)
from repro.workloads.queries import QueryMix, mixed_queries
from repro.workloads.synthetic import random_keys
from tests.cuart.test_write_path_lockstep import _assert_layouts_equal

SEEDS = [3, 17, 91]


def _items(keys):
    return [(k, i + 1) for i, k in enumerate(keys)]


def _sharded(keys, n_shards, *, mode="hash", batch_size=64, **kwargs):
    eng = ShardedEngine(
        sharding=ShardingConfig(n_shards=n_shards, mode=mode),
        batch_size=batch_size,
        **kwargs,
    )
    eng.populate(_items(keys))
    eng.map_to_device()
    return eng


def _single(keys, *, batch_size=64, **kwargs):
    eng = CuartEngine(batch_size=batch_size, **kwargs)
    eng.populate(_items(keys))
    eng.map_to_device()
    return eng


def _canonical_engine(eng) -> CuartEngine:
    """Re-serialize any engine's surviving content through one fresh
    single engine: identical content => identical layout => identical
    bytes on disk (the canonicalization the rebalance path relies on)."""
    canon = CuartEngine(batch_size=64)
    items = eng.items() if hasattr(eng, "items") else eng.tree.items()
    canon.populate(sorted(items))
    canon.map_to_device()
    return canon


def _assert_canonical_bytes_identical(a, b, tmp_path):
    ca, cb = _canonical_engine(a), _canonical_engine(b)
    _assert_layouts_equal(ca.layout, cb.layout)
    pa, pb = tmp_path / "a.npz", tmp_path / "b.npz"
    save_layout(ca.layout, pa)
    save_layout(cb.layout, pb)
    assert pa.read_bytes() == pb.read_bytes(), (
        "canonical serialized layouts are not byte-identical"
    )


def _run_pair(keys, stream, n_shards, *, tmp_path):
    sharded = _sharded(keys, n_shards)
    single = _single(keys)
    got, rep = ShardedMixedExecutor(sharded).run(stream)
    want, _ = MixedWorkloadExecutor(single).run(stream)
    assert got == want, "per-op results diverged from single-engine oracle"
    _assert_canonical_bytes_identical(sharded, single, tmp_path)
    return sharded, rep


class TestCanonicalLockstep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_mixed_stream(self, seed, tmp_path):
        keys = random_keys(512, 12, seed=seed)
        mix = QueryMix(lookups=0.5, updates=0.35, deletes=0.15)
        stream = mixed_queries(keys, 900, mix, seed=seed + 1)
        _, rep = _run_pair(keys, stream, 4, tmp_path=tmp_path)
        assert rep.operations == 900

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_shard_count_invariance(self, n_shards, tmp_path):
        keys = random_keys(512, 12, seed=11)
        mix = QueryMix(lookups=0.4, updates=0.4, deletes=0.2)
        stream = mixed_queries(keys, 700, mix, seed=12)
        _run_pair(keys, stream, n_shards, tmp_path=tmp_path)

    def test_range_mode_matches_hash_mode_content(self, tmp_path):
        keys = random_keys(512, 12, seed=21)
        mix = QueryMix(lookups=0.5, updates=0.4, deletes=0.1)
        stream = mixed_queries(keys, 600, mix, seed=22)
        by_hash = _sharded(keys, 4, mode="hash")
        by_range = _sharded(keys, 4, mode="range")
        rh, _ = ShardedMixedExecutor(by_hash).run(stream)
        rr, _ = ShardedMixedExecutor(by_range).run(stream)
        assert rh == rr
        _assert_canonical_bytes_identical(by_hash, by_range, tmp_path)


class TestAdversarialCrossShardBursts:
    """Hot keys living on *different* shards, hammered with interleaved
    RAW/WAW bursts: per-key order must hold even though the stream keeps
    ping-ponging between shards (conflicts are shard-local by routing)."""

    def _hot_keys_on_distinct_shards(self, eng, keys, n=4):
        picked, seen = [], set()
        for k in keys:
            sid = eng.router.shard_of(k)
            if sid not in seen:
                seen.add(sid)
                picked.append(k)
            if len(picked) == n:
                break
        assert len(picked) == n, "need keys spanning n distinct shards"
        return picked

    def test_cross_shard_raw_waw_burst(self, tmp_path):
        keys = random_keys(256, 12, seed=31)
        probe = _sharded(keys, 4)
        hot = self._hot_keys_on_distinct_shards(probe, keys, n=4)
        stream = []
        for round_ in range(40):
            for j, k in enumerate(hot):
                stream.append(("update", (k, round_ * 100 + j)))
                stream.append(("lookup", k))           # RAW across shards
                stream.append(("update", (k, round_ * 100 + j + 50)))  # WAW
                stream.append(("lookup", hot[(j + 1) % len(hot)]))
        _run_pair(keys, stream, 4, tmp_path=tmp_path)

    def test_cross_shard_delete_reinsert_burst(self, tmp_path):
        keys = random_keys(256, 12, seed=41)
        probe = _sharded(keys, 4)
        hot = self._hot_keys_on_distinct_shards(probe, keys, n=4)
        stream = []
        for round_ in range(25):
            for j, k in enumerate(hot):
                stream.append(("delete", k))
                stream.append(("lookup", k))            # must miss
                stream.append(("insert", (k, round_ * 10 + j)))
                stream.append(("lookup", k))            # must hit again
        _, rep = _run_pair(keys, stream, 4, tmp_path=tmp_path)
        assert rep.misses >= 25 * len(hot)

    def test_duplicate_key_burst_last_writer_wins(self, tmp_path):
        keys = random_keys(256, 12, seed=51)
        probe = _sharded(keys, 4)
        hot = self._hot_keys_on_distinct_shards(probe, keys, n=2)
        stream = []
        for i in range(120):
            stream.append(("update", (hot[i % 2], i)))
        stream += [("lookup", hot[0]), ("lookup", hot[1])]
        sharded, _ = _run_pair(keys, stream, 4, tmp_path=tmp_path)
        assert sharded.lookup(hot)[:] == [118, 119]


class TestFaultSoak:
    def test_faulty_shards_match_fault_free_oracle(self, tmp_path):
        """1% uniform fault rate, independently seeded per shard, under
        the default retry policy: every op still lands exactly once and
        the surviving content is byte-identical to a fault-free run."""
        keys = random_keys(512, 12, seed=61)
        mix = QueryMix(lookups=0.5, updates=0.35, deletes=0.15)
        stream = mixed_queries(keys, 900, mix, seed=62)

        faulty = _sharded(
            keys, 4,
            faults=FaultConfig.uniform(0.01, seed=321),
            resilience=ResiliencePolicy(),
        )
        oracle = _single(keys)
        got, rep = ShardedMixedExecutor(faulty).run(stream)
        want, _ = MixedWorkloadExecutor(oracle).run(stream)

        injected = [s._injector.total_injected for s in faulty.shards]
        assert sum(injected) > 0, "the soak never injected a fault"
        # per-shard seeds are offset, so the streams are independent
        seeds = {s._injector.config.seed for s in faulty.shards}
        assert len(seeds) == faulty.n_shards
        assert rep.ops_by_status.get("FAILED", 0) == 0
        assert got == want
        _assert_canonical_bytes_identical(faulty, oracle, tmp_path)


class TestSingleShardDegenerate:
    def test_one_shard_is_byte_identical_to_plain_engine(self, tmp_path):
        """``n_shards=1`` routes everything to shard 0: no canonical
        re-serialization needed — the shard's own mapped layout must be
        byte-for-byte the plain engine's."""
        keys = random_keys(512, 12, seed=71)
        mix = QueryMix(lookups=0.5, updates=0.35, deletes=0.15)
        stream = mixed_queries(keys, 800, mix, seed=72)
        sharded = _sharded(keys, 1)
        single = _single(keys)
        got, _ = ShardedMixedExecutor(sharded).run(stream)
        want, _ = MixedWorkloadExecutor(single).run(stream)
        assert got == want
        shard = sharded.shards[0]
        _assert_layouts_equal(shard.layout, single.layout)
        pa, pb = tmp_path / "sharded.npz", tmp_path / "single.npz"
        save_layout(shard.layout, pa)
        save_layout(single.layout, pb)
        assert pa.read_bytes() == pb.read_bytes()

    def test_rebalance_preserves_canonical_bytes(self, tmp_path):
        """A rebalance migrates partitions mid-stream; content before
        and after must canonicalize to the same bytes as the oracle."""
        keys = random_keys(512, 12, seed=81)
        mix = QueryMix(lookups=0.3, updates=0.6, deletes=0.1)
        stream = mixed_queries(keys, 600, mix, seed=82)
        half = len(stream) // 2
        sharded = _sharded(keys, 4, mode="range")
        single = _single(keys)
        got1, _ = ShardedMixedExecutor(sharded).run(stream[:half])
        sharded.rebalance()
        got2, _ = ShardedMixedExecutor(sharded).run(stream[half:])
        want, _ = MixedWorkloadExecutor(single).run(stream)
        assert got1 + got2 == want
        _assert_canonical_bytes_identical(sharded, single, tmp_path)
