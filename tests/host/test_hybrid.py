"""Unit tests for the hybrid CPU/GPU split (figures 13/14)."""

import pytest

from repro.gpusim.devices import SERVER_CPU
from repro.gpusim.streams import PipelineStage, pipeline
from repro.host.hybrid import (
    HybridConfig,
    cpu_path_rate,
    hybrid_throughput,
    split_queries,
)


def gpu_pipe(rate_mops=500.0, batch=32768):
    return pipeline([PipelineStage("kernel", batch / (rate_mops * 1e6))], batch)


class TestSplitQueries:
    def test_partition(self):
        keys = [b"short", b"L" * 40, b"tiny", b"X" * 33]
        (short, spos), (long_, lpos) = split_queries(keys, 32)
        assert short == [b"short", b"tiny"] and spos == [0, 2]
        assert long_ == [b"L" * 40, b"X" * 33] and lpos == [1, 3]

    def test_boundary_inclusive(self):
        (short, _), (long_, _) = split_queries([b"x" * 32], 32)
        assert short and not long_


class TestHybridThroughput:
    def test_zero_fraction_is_gpu_rate(self):
        out = hybrid_throughput(gpu_pipe(), HybridConfig(cpu_fraction=0.0),
                                SERVER_CPU)
        assert out["total_mops"] == pytest.approx(500.0, rel=0.01)
        assert out["bottleneck"] == "gpu"

    def test_large_fraction_cpu_bound(self):
        out = hybrid_throughput(gpu_pipe(), HybridConfig(cpu_fraction=0.5),
                                SERVER_CPU)
        assert out["bottleneck"] == "cpu"
        assert out["total_mops"] < 100.0

    def test_monotone_beyond_knee(self):
        rates = [
            hybrid_throughput(gpu_pipe(), HybridConfig(cpu_fraction=f),
                              SERVER_CPU)["total_mops"]
            for f in (0.05, 0.1, 0.2, 0.4)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_contiguous_cpu_layout_helps(self):
        slow = cpu_path_rate(
            HybridConfig(cpu_fraction=0.1, contiguous_layout=False,
                         working_set_bytes=1 << 30),
            SERVER_CPU,
        )
        fast = cpu_path_rate(
            HybridConfig(cpu_fraction=0.1, contiguous_layout=True,
                         working_set_bytes=1 << 30),
            SERVER_CPU,
        )
        assert fast > slow

    def test_more_cpu_threads_help(self):
        few = cpu_path_rate(HybridConfig(cpu_fraction=0.1, cpu_threads=8),
                            SERVER_CPU)
        many = cpu_path_rate(HybridConfig(cpu_fraction=0.1, cpu_threads=56),
                             SERVER_CPU)
        assert many > few

    def test_fraction_clamped(self):
        out = hybrid_throughput(gpu_pipe(), HybridConfig(cpu_fraction=1.5),
                                SERVER_CPU)
        assert out["cpu_fraction"] == 1.0
